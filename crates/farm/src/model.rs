//! Declarative mirror of [`crate::run_scenario`]: expands a
//! [`ScenarioSpec`] into the [`SysModel`] the static analyzer consumes.
//!
//! This module must describe **exactly** the workload `build.rs`
//! assembles — same critical-section lengths, same lock policies, same
//! release machinery — or the analyzer certifies a fiction. The farm
//! keeps the two honest in both directions: the conformance sink
//! checks the observed stream against this model, and every positive
//! verdict is cross-validated against the dynamic run
//! (`docs/STATIC_ANALYSIS.md`).
//!
//! Modelling policy, per topology family:
//!
//! * `independent`, `sem_chain`, `mbx_pipeline`, `flag_barrier`,
//!   `mtx_inherit`, `mtx_ceiling` — every timing aspect is bounded:
//!   `timing_complete = true`, so schedulability verdicts are issued.
//! * `mbf_pipeline`, `mpf_pool`, `mpl_pressure` — jobs wait on
//!   undersized buffers/pools with a 2×period timeout, which exceeds
//!   the implicit deadline *by design*; `lifecycle_churn`,
//!   `disp_window`/`cpu_lock_window`, `alm_cyc_storm` — lifecycle
//!   churn, dispatch-control windows and alarm races defeat job-level
//!   budgets. All declare `timing_complete = false`: structural
//!   (deadlock) verdicts only.
//! * A `delay_every_nth_release` fault plan deliberately makes jobs
//!   miss; `fault_degraded = true` withholds schedulability claims.
//!   Dropped-IRQ faults only *reduce* load and keep certification.
//!
//! Costs come from the paper's 8051 cost model
//! ([`rtk_core::CostModel::mcu_8051`]) plus explicit slack pads: the
//! analyzer's bounds must stay *sound* (never below dynamic reality),
//! so every kernel-path estimate rounds up. The pads are validated
//! empirically by the 1000-seed `--analyze` campaign, which fails on
//! any observed latency above a certified bound.

use rtk_core::{
    InterferenceModel, KernelConfig, LockPolicy, ResourceModel, SectionModel, ServiceClass,
    SysModel, TaskModel,
};

use crate::scenario::{ScenarioSpec, Topology};

/// Measurement warm-up window, µs: releases stamped before this are
/// exempt from bound/deadline cross-checks. Kernel boot plus object
/// creation runs at init priority 1 and can delay the very first jobs
/// by more than a short period — a startup transient outside the
/// steady-state RTA model (see `docs/STATIC_ANALYSIS.md`).
pub const WARMUP_US: u64 = 20_000;

/// Per-job kernel overhead pad, µs: gate-semaphore bookkeeping, the
/// wakeup dispatch into the job and the dispatch away at its end,
/// plus slack for stamp/queue handling in the release path.
const JOB_OVERHEAD_US: u64 = 200;

/// Per-occurrence pads on modelled interference sources (µs).
const TICK_PAD_US: u64 = 20;
const CYC_PAD_US: u64 = 15;
const ISR_PAD_US: u64 = 25;

/// Builds the declarative model of a generated scenario.
pub fn static_model(spec: &ScenarioSpec) -> SysModel {
    let cfg = KernelConfig::paper();
    let us = |class: ServiceClass| cfg.cost.service(class).time.as_us();
    let sem = us(ServiceClass::Semaphore);
    let mtx = us(ServiceClass::Mutex);
    let flg = us(ServiceClass::EventFlag);
    let mbx = us(ServiceClass::Mailbox);
    let mbf = us(ServiceClass::MessageBuffer);
    let time = us(ServiceClass::Time);
    let int = us(ServiceClass::Interrupt);
    let tick_us = cfg.tick.as_us();
    let int_entry = cfg.cost.int_entry.time.as_us();
    let int_exit = cfg.cost.int_exit.time.as_us();

    let mut m = SysModel::empty();
    m.fault_degraded = spec.faults.delay_every_nth_release.is_some();
    m.timing_complete = matches!(
        spec.topology,
        Topology::Independent
            | Topology::SemChain
            | Topology::MbxPipeline
            | Topology::FlagBarrier
            | Topology::MtxChain { .. }
    );

    // Shared resource of the topology (mirrors the creation order in
    // `build.rs`: topology objects first, per-task gates after).
    let top_pri = spec.tasks.iter().map(|t| t.priority).min().unwrap_or(1);
    match spec.topology {
        Topology::SemChain => {
            m.resources.push(ResourceModel {
                name: "chain".into(),
                policy: LockPolicy::None,
                pri_order: spec.priority_queues,
            });
            // The chain semaphore is the first SemCreate; the per-task
            // gates that follow are not lock resources.
            m.sem_resources = vec![0];
        }
        Topology::MtxChain { ceiling } => {
            m.resources.push(ResourceModel {
                name: "chain".into(),
                policy: if ceiling {
                    LockPolicy::Ceiling(top_pri)
                } else {
                    LockPolicy::Inherit
                },
                pri_order: true,
            });
            m.mutex_resources = vec![0];
        }
        Topology::LifecycleChurn => {
            m.resources.push(ResourceModel {
                name: "churn".into(),
                policy: LockPolicy::Inherit,
                pri_order: true,
            });
            m.mutex_resources = vec![0];
        }
        _ => {}
    }

    // The measured periodic tasks.
    let t0_period_us = u64::from(spec.tasks[0].period_ms) * 1000;
    for (i, t) in spec.tasks.iter().enumerate() {
        let exec = u64::from(t.exec_us);
        let period_us = u64::from(t.period_ms) * 1000;
        let mut cost = exec + sem + JOB_OVERHEAD_US;
        let mut sections = Vec::new();
        match spec.topology {
            Topology::Independent => {}
            Topology::SemChain => {
                let crit = (exec / 5).max(10);
                cost += 2 * sem;
                sections.push(SectionModel::leaf(0, crit + sem));
            }
            Topology::MbxPipeline => {
                if i == 0 {
                    // The drain polls every pending record plus one
                    // failing poll. Pending is bounded by what the
                    // other tasks can send across two drain periods
                    // (accumulation window + the drain job's own
                    // response time ≤ its period when certified).
                    let msgs: u64 = spec
                        .tasks
                        .iter()
                        .skip(1)
                        .map(|s| (2 * t0_period_us).div_ceil(u64::from(s.period_ms) * 1000) + 2)
                        .sum();
                    cost += (msgs + 1) * mbx;
                } else {
                    cost += mbx;
                }
            }
            Topology::FlagBarrier => cost += flg,
            Topology::MtxChain { .. } => {
                let crit = (exec / 4).max(10);
                cost += 2 * mtx;
                sections.push(SectionModel::leaf(0, crit + mtx));
            }
            Topology::MbfPipeline => cost += mbf,
            Topology::MpfPool => cost += 2 * us(ServiceClass::MemoryPool),
            Topology::LifecycleChurn => {
                let crit = (exec / 5).max(10);
                cost += 2 * mtx;
                sections.push(SectionModel::leaf(0, crit + mtx));
            }
            Topology::DispWindow { .. } => {}
            Topology::MplPressure => cost += 2 * us(ServiceClass::MemoryPool),
            Topology::AlmCycStorm => cost += 2 * time + 2 * sem,
        }
        m.tasks.push(TaskModel {
            name: format!("tsk{i}"),
            priority: t.priority,
            period_us,
            offset_us: u64::from(t.phase_ms) * 1000,
            deadline_us: period_us,
            cost_us: cost,
            sections,
            measured: true,
        });
    }

    // Aperiodic helper with a declared critical section: the churn
    // victim (its 400 µs section blocks measured tasks).
    if matches!(spec.topology, Topology::LifecycleChurn) {
        m.tasks.push(TaskModel {
            name: "victim".into(),
            priority: 105,
            period_us: 0,
            offset_us: 0,
            deadline_us: 0,
            cost_us: 400 + mtx,
            sections: vec![SectionModel::leaf(0, 400 + mtx)],
            measured: false,
        });
    }

    // Interference sources: the system tick, each task's release
    // cyclic (stamp + gate signal in tick context), and the ISR storm.
    m.interference.push(InterferenceModel {
        name: "tick".into(),
        period_us: tick_us,
        cost_us: cfg.cost.timer_tick.time.as_us() + int_entry + int_exit + TICK_PAD_US,
    });
    for (i, t) in spec.tasks.iter().enumerate() {
        m.interference.push(InterferenceModel {
            name: format!("rel{i}"),
            period_us: u64::from(t.period_ms) * 1000,
            cost_us: sem + time + CYC_PAD_US,
        });
    }
    if let Some(storm) = &spec.storm {
        m.interference.push(InterferenceModel {
            name: "storm".into(),
            period_us: u64::from(storm.gap_us),
            cost_us: u64::from(storm.isr_us) + int_entry + int_exit + int + ISR_PAD_US,
        });
    }

    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Tuning;
    use rtk_analysis::static_verify::{analyze, AnalysisOptions, Verdict};

    #[test]
    fn model_mirrors_spec_shape() {
        let t = Tuning::default();
        for seed in 0..300 {
            let spec = ScenarioSpec::generate(seed, &t);
            let m = static_model(&spec);
            let measured = m.tasks.iter().filter(|t| t.measured).count();
            assert_eq!(measured, spec.tasks.len(), "seed {seed}");
            for (task, spec_task) in m.tasks.iter().zip(&spec.tasks) {
                assert!(task.cost_us > u64::from(spec_task.exec_us));
                assert_eq!(task.period_us, u64::from(spec_task.period_ms) * 1000);
            }
            // Interference always includes the tick.
            assert!(m.interference.iter().any(|s| s.name == "tick"));
            if spec.storm.is_some() {
                assert!(m.interference.iter().any(|s| s.name == "storm"));
            }
        }
    }

    #[test]
    fn model_is_pure() {
        let t = Tuning {
            quick: true,
            faults: true,
        };
        for seed in [0u64, 17, 99, 1234] {
            let spec = ScenarioSpec::generate(seed, &t);
            assert_eq!(static_model(&spec), static_model(&spec));
        }
    }

    #[test]
    fn certified_families_are_analyzable() {
        // Across a seed scan, each certifiable family must produce at
        // least one certified-schedulable verdict, and structural
        // families must stay deadlock-certified with verdicts Unknown.
        let t = Tuning {
            quick: true,
            faults: false,
        };
        let mut sched_certified = std::collections::BTreeSet::new();
        for seed in 0..600 {
            let spec = ScenarioSpec::generate(seed, &t);
            let m = static_model(&spec);
            let r = analyze(&m, &AnalysisOptions::default());
            // Single-resource (or no-resource) scenarios can never
            // have a lock-order cycle.
            assert_eq!(r.deadlock, Verdict::Certified, "seed {seed}");
            if m.timing_complete {
                if r.schedulable == Verdict::Certified {
                    sched_certified.insert(spec.topology.label());
                }
            } else {
                assert_eq!(r.schedulable, Verdict::Unknown, "seed {seed}");
            }
        }
        for family in ["independent", "sem_chain", "flag_barrier"] {
            assert!(
                sched_certified.contains(family),
                "no certified scenario in family {family}: {sched_certified:?}"
            );
        }
    }
}
