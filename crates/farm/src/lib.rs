//! # rtk-farm — parallel seeded scenario campaigns over RTK-Spec TRON
//!
//! The simulation farm turns the single-instance examples of the paper
//! reproduction into *campaigns*: thousands of parameterized scenarios,
//! each a complete kernel instance with its own workload, executed
//! across worker threads and mined into distribution summaries.
//!
//! Pipeline (`seed → scenario → runner → aggregate`):
//!
//! 1. **Seed expansion** ([`ScenarioSpec::generate`]) — a pure function
//!    from a `u64` seed to a workload description: periodic task sets,
//!    sem/mailbox/event-flag topologies, interrupt storms and optional
//!    fault injection (dropped interrupts, delayed releases).
//! 2. **Execution** ([`run_scenario`]) — builds one [`rtk_core::Rtos`]
//!    per job, runs it to the horizon, measures response latencies,
//!    deadline misses, context switches and energy. Panics are caught
//!    per scenario; stalls and livelocks are flagged. With the oracle
//!    enabled ([`run_scenario_checked`]), every kernel decision is
//!    additionally replayed through a sequential ITRON reference model
//!    ([`oracle`]) and the first spec divergence flags the scenario.
//! 3. **Parallel runner** ([`run_campaign`]) — a work-stealing thread
//!    pool; kernels are independent, so the campaign is embarrassingly
//!    parallel. Results land in seed-indexed slots.
//! 4. **Aggregation** ([`CampaignReport`]) — nearest-rank percentile
//!    summaries and the deterministic `BENCH_farm.json`: byte-identical
//!    for a fixed seed set regardless of thread count.
//!
//! On top of the pipeline sits the streaming trace platform: with a
//! [`TraceConfig`] every scenario's observation stream (grammar:
//! `docs/OBS_GRAMMAR.md`) is captured into a binary `.rtkt` file
//! (format: `docs/TRACE_FORMAT.md`), and [`replay`] re-runs the
//! differential oracle from those files alone — same verdicts, same
//! first-divergence indexes, no kernel execution.
//!
//! ```
//! use rtk_farm::{run_campaign, CampaignConfig, CampaignReport, Tuning};
//!
//! let cfg = CampaignConfig {
//!     base_seed: 1,
//!     seeds: 4,
//!     threads: 2,
//!     tuning: Tuning { quick: true, faults: true },
//!     oracle: true,
//!     ..CampaignConfig::default()
//! };
//! let outcomes = run_campaign(&cfg);
//! let report = CampaignReport::new(cfg, outcomes);
//! assert!(report.all_healthy());
//! ```

#![warn(missing_docs)]

mod build;
pub mod explore;
pub mod model;
pub mod oracle;
pub mod replay;
mod report;
mod rng;
mod runner;
mod scenario;
pub mod verify;

pub use build::{
    run_scenario, run_scenario_analyzed, run_scenario_checked, run_scenario_checked_on,
    run_scenario_observed, run_scenario_traced, ScenarioOutcome, TraceConfig,
};
pub use explore::{
    run_exploration, write_counterexamples, Counterexample, ExploreConfig, ExploreOutcome,
    ExploreReport, Family, Violation,
};
pub use model::static_model;
pub use oracle::{check, Checker, Choice, Divergence, OracleVerdict, SpecMutation, SpecState};
pub use replay::{
    replay_analysis, replay_path, replay_report_json, replay_report_json_analyzed, replay_trace,
    ReplayedAnalysis, ReplayedTrace,
};
pub use report::{Aggregate, CampaignReport};
pub use rng::FarmRng;
pub use runner::{run_campaign, CampaignConfig};
pub use scenario::{FaultPlan, ScenarioSpec, StormSpec, TaskSpec, Topology, Tuning};
pub use verify::{analyze_spec, verify_outcome, AnalysisRecord};
