//! Seed → scenario expansion.
//!
//! A [`ScenarioSpec`] is plain data: everything the builder needs to
//! assemble a kernel instance plus its workload, and nothing else. The
//! expansion from a `u64` seed is a pure function ([`ScenarioSpec::generate`]),
//! so a seed names the same scenario on every host and the spec can be
//! hashed ([`ScenarioSpec::digest`]) to prove it.
//!
//! The generated shape follows the paper's evaluation workloads, scaled
//! into a campaign: periodic tasks released by cyclic handlers (the
//! video-game frame/input pattern), optional blocking topologies over
//! kernel objects (semaphore critical sections, mailbox pipelines,
//! event-flag barriers, inheritance/ceiling mutex chains with timed
//! locks, bounded message-buffer pipelines, undersized fixed memory
//! pools), optional external interrupt storms through the BFM path
//! (§ interrupt nesting), and optional fault injection (dropped
//! interrupt requests, delayed releases) in the spirit of the FreeRTOS
//! dependability campaigns in PAPERS.md.

use crate::rng::FarmRng;

/// One periodic task of a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Task priority (T-Kernel: smaller = more urgent).
    pub priority: u8,
    /// Release period in milliseconds (also the implicit deadline).
    pub period_ms: u32,
    /// First release offset in milliseconds (< period).
    pub phase_ms: u32,
    /// Per-job execution cost in microseconds.
    pub exec_us: u32,
}

/// How the tasks of a scenario interact through kernel objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// No sharing: purely periodic, independent tasks.
    Independent,
    /// All tasks contend for one semaphore-guarded critical section
    /// (a fraction of each job runs while holding it).
    SemChain,
    /// Every task posts a completion message to a shared mailbox; the
    /// highest-priority task drains it (poll) at each of its jobs.
    MbxPipeline,
    /// Every task sets its bit in a shared event flag; a low-priority
    /// collector task waits for the AND of all bits (with clear).
    FlagBarrier,
    /// All tasks guard their critical section with one shared mutex
    /// (priority inversion under preemption); `ceiling` selects
    /// `TA_CEILING` over `TA_INHERIT`. Locks use a finite timeout, so
    /// contention also exercises the timeout path.
    MtxChain {
        /// `TA_CEILING` when `true`, `TA_INHERIT` otherwise.
        ceiling: bool,
    },
    /// Every task sends a completion record into a small shared message
    /// buffer; a low-priority drain task receives in a loop. The buffer
    /// is sized to fill up, so senders block and rendezvous handoffs
    /// occur.
    MbfPipeline,
    /// Tasks hold a block from an undersized fixed memory pool across
    /// their job body, so the pool wait queue stays busy and released
    /// blocks are handed to waiters directly.
    MpfPool,
    /// Task-lifecycle churn: a victim task cycles through an
    /// inheritance-mutex critical section (shared with the measured
    /// tasks) and timed sleeps while a high-priority saboteur
    /// terminates/restarts it, forcibly releases its waits, drives
    /// nested suspend/resume, and queues wakeups — the
    /// `tk_ter_tsk`/`tk_rel_wai`/`tk_sus_tsk` surface under load.
    LifecycleChurn,
    /// Every job wraps part of its execution in a dispatch-control
    /// window — `tk_loc_cpu`/`tk_unl_cpu` when `lock_cpu`,
    /// `tk_dis_dsp`/`tk_ena_dsp` otherwise — with a `tk_rot_rdq`
    /// inside, so preemptions and interrupt deliveries pend against
    /// the window and replay at its end.
    DispWindow {
        /// `tk_loc_cpu` (interrupts masked too) instead of
        /// `tk_dis_dsp`.
        lock_cpu: bool,
    },
    /// Tasks allocate seeded variable-size blocks from an undersized
    /// first-fit pool (timed waits), while a hoarder task holds
    /// several blocks across sleeps and releases them in varying
    /// permutations — fragmentation, coalescing and waiter re-serve.
    MplPressure,
    /// Every task arms a personal one-shot alarm per job (sometimes
    /// stopping it before it fires) and collects the handler's
    /// semaphore signal; a spare cyclic handler is started/stopped on
    /// the fly — the time-event storm over the alarm/cyclic surface.
    AlmCycStorm,
}

impl Topology {
    /// Stable label used in reports and digests.
    pub const fn label(self) -> &'static str {
        match self {
            Topology::Independent => "independent",
            Topology::SemChain => "sem_chain",
            Topology::MbxPipeline => "mbx_pipeline",
            Topology::FlagBarrier => "flag_barrier",
            Topology::MtxChain { ceiling: false } => "mtx_inherit",
            Topology::MtxChain { ceiling: true } => "mtx_ceiling",
            Topology::MbfPipeline => "mbf_pipeline",
            Topology::MpfPool => "mpf_pool",
            Topology::LifecycleChurn => "lifecycle_churn",
            Topology::DispWindow { lock_cpu: false } => "disp_window",
            Topology::DispWindow { lock_cpu: true } => "cpu_lock_window",
            Topology::MplPressure => "mpl_pressure",
            Topology::AlmCycStorm => "alm_cyc_storm",
        }
    }

    /// Every label the generator can draw (the `--topology` filter
    /// validates against this list).
    pub const ALL_LABELS: [&'static str; 13] = [
        "independent",
        "sem_chain",
        "mbx_pipeline",
        "flag_barrier",
        "mtx_inherit",
        "mtx_ceiling",
        "mbf_pipeline",
        "mpf_pool",
        "lifecycle_churn",
        "disp_window",
        "cpu_lock_window",
        "mpl_pressure",
        "alm_cyc_storm",
    ];
}

/// An external interrupt storm raised by a simulated hardware process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormSpec {
    /// Number of interrupt lines used (1 or 2: the 8051's two levels).
    pub lines: u8,
    /// Simulated time of the first request, in microseconds.
    pub first_us: u32,
    /// Gap between consecutive requests, in microseconds.
    pub gap_us: u32,
    /// ISR body execution cost per activation, in microseconds.
    pub isr_us: u32,
}

/// Deterministic fault-injection toggles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Drop every Nth interrupt request before it reaches the kernel
    /// (a flaky interrupt line).
    pub drop_every_nth_irq: Option<u32>,
    /// Defer every Nth periodic release to the following cycle (a
    /// delayed timer): the release timestamp keeps the intended time,
    /// so the added latency surfaces as deadline misses.
    pub delay_every_nth_release: Option<u32>,
}

impl FaultPlan {
    /// `true` when no fault is armed.
    pub fn is_clean(&self) -> bool {
        self.drop_every_nth_irq.is_none() && self.delay_every_nth_release.is_none()
    }
}

/// Knobs of the generator that are campaign-wide (not per-seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuning {
    /// Shorter horizon for smoke campaigns (CI).
    pub quick: bool,
    /// Allow fault-injection draws.
    pub faults: bool,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            quick: false,
            faults: true,
        }
    }
}

/// A complete, self-contained scenario description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// The seed this spec was expanded from.
    pub seed: u64,
    /// The periodic task set (2..=6 tasks).
    pub tasks: Vec<TaskSpec>,
    /// Wait-queue order of shared objects (`TA_TFIFO`/`TA_TPRI`).
    pub priority_queues: bool,
    /// Inter-task topology.
    pub topology: Topology,
    /// Optional interrupt storm.
    pub storm: Option<StormSpec>,
    /// Fault-injection plan (all-`None` when the campaign disables it).
    pub faults: FaultPlan,
    /// Simulated horizon in milliseconds.
    pub horizon_ms: u32,
}

/// Candidate release periods (ms). Harmonic-ish small set keeps the
/// hyperperiod short and the scenarios busy.
const PERIODS_MS: [u32; 8] = [2, 4, 5, 8, 10, 20, 25, 40];

impl ScenarioSpec {
    /// Expands a seed into a scenario (pure function of `seed` and
    /// `tuning`).
    pub fn generate(seed: u64, tuning: &Tuning) -> ScenarioSpec {
        let mut rng = FarmRng::new(seed);
        let ntasks = rng.range(2, 6) as usize;

        // Total CPU utilization target of the task set, percent. Kept
        // below saturation so a healthy scenario has no structural
        // overload; storms and faults then perturb it.
        let util_pct = rng.range(30, 75);
        let weights: Vec<u64> = (0..ntasks).map(|_| rng.range(1, 10)).collect();
        let weight_sum: u64 = weights.iter().sum();

        let mut tasks = Vec::with_capacity(ntasks);
        for (i, &w) in weights.iter().enumerate() {
            let period_ms = PERIODS_MS[rng.below(PERIODS_MS.len() as u64) as usize];
            let phase_ms = rng.below(u64::from(period_ms)) as u32;
            let task_util = util_pct * w / weight_sum; // percent
            let exec_us = (u64::from(period_ms) * 1000 * task_util / 100).clamp(50, 30_000) as u32;
            // Distinct priorities, higher-frequency tasks not forced
            // rate-monotonic on purpose: mis-ordered priorities are
            // interesting scenarios too.
            let priority = (10 + i as u64 * 10 + rng.below(8)) as u8;
            tasks.push(TaskSpec {
                priority,
                period_ms,
                phase_ms,
                exec_us,
            });
        }

        let topology = match rng.below(11) {
            0 => Topology::Independent,
            1 => Topology::SemChain,
            2 => Topology::MbxPipeline,
            3 => Topology::FlagBarrier,
            4 => Topology::MtxChain {
                ceiling: rng.chance(1, 2),
            },
            5 => Topology::MbfPipeline,
            6 => Topology::MpfPool,
            7 => Topology::LifecycleChurn,
            8 => Topology::DispWindow {
                lock_cpu: rng.chance(1, 2),
            },
            9 => Topology::MplPressure,
            _ => Topology::AlmCycStorm,
        };

        let storm = if rng.chance(3, 5) {
            Some(StormSpec {
                lines: rng.range(1, 2) as u8,
                first_us: rng.range(100, 2000) as u32,
                gap_us: rng.range(150, 1500) as u32,
                isr_us: rng.range(20, 120) as u32,
            })
        } else {
            None
        };

        let faults = if tuning.faults {
            FaultPlan {
                drop_every_nth_irq: if storm.is_some() && rng.chance(3, 10) {
                    Some(rng.range(3, 8) as u32)
                } else {
                    None
                },
                delay_every_nth_release: if rng.chance(3, 10) {
                    Some(rng.range(4, 10) as u32)
                } else {
                    None
                },
            }
        } else {
            FaultPlan::default()
        };

        ScenarioSpec {
            seed,
            tasks,
            priority_queues: rng.chance(1, 2),
            topology,
            storm,
            faults,
            horizon_ms: if tuning.quick { 120 } else { 400 },
        }
    }

    /// FNV-1a digest over the canonical field encoding — two equal
    /// specs always hash equal, and the farm report embeds the digest
    /// so a campaign is auditable without re-running it.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.seed);
        h.u64(self.tasks.len() as u64);
        for t in &self.tasks {
            h.u64(u64::from(t.priority));
            h.u64(u64::from(t.period_ms));
            h.u64(u64::from(t.phase_ms));
            h.u64(u64::from(t.exec_us));
        }
        h.u64(u64::from(self.priority_queues));
        h.bytes(self.topology.label().as_bytes());
        match &self.storm {
            None => h.u64(0),
            Some(s) => {
                h.u64(1);
                h.u64(u64::from(s.lines));
                h.u64(u64::from(s.first_us));
                h.u64(u64::from(s.gap_us));
                h.u64(u64::from(s.isr_us));
            }
        }
        h.u64(self.faults.drop_every_nth_irq.map_or(0, u64::from));
        h.u64(self.faults.delay_every_nth_release.map_or(0, u64::from));
        h.u64(u64::from(self.horizon_ms));
        h.finish()
    }

    /// Total task-set utilization in percent (storm load excluded).
    pub fn utilization_pct(&self) -> u64 {
        self.tasks
            .iter()
            .map(|t| u64::from(t.exec_us) * 100 / (u64::from(t.period_ms) * 1000))
            .sum()
    }
}

/// Minimal FNV-1a 64-bit hasher (stable across platforms, unlike
/// `DefaultHasher`, which documents no cross-version stability).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_pure() {
        let t = Tuning::default();
        for seed in 0..200 {
            let a = ScenarioSpec::generate(seed, &t);
            let b = ScenarioSpec::generate(seed, &t);
            assert_eq!(a, b);
            assert_eq!(a.digest(), b.digest());
        }
    }

    #[test]
    fn specs_are_well_formed() {
        let t = Tuning::default();
        for seed in 0..500 {
            let s = ScenarioSpec::generate(seed, &t);
            assert!((2..=6).contains(&s.tasks.len()), "seed {seed}");
            for task in &s.tasks {
                assert!(task.phase_ms < task.period_ms);
                assert!(task.exec_us >= 50);
                assert!(u64::from(task.exec_us) < u64::from(task.period_ms) * 1000);
                assert!((1..=140).contains(&task.priority));
            }
            // Below structural overload even with rounding slack.
            assert!(
                s.utilization_pct() <= 80,
                "seed {seed}: {}",
                s.utilization_pct()
            );
            if let Some(storm) = &s.storm {
                assert!((1..=2).contains(&storm.lines));
                assert!(storm.gap_us >= 150);
            }
        }
    }

    #[test]
    fn digests_differ_across_seeds() {
        let t = Tuning::default();
        let mut digests: Vec<u64> = (0..300)
            .map(|s| ScenarioSpec::generate(s, &t).digest())
            .collect();
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), 300, "digest collision in first 300 seeds");
    }

    #[test]
    fn fault_toggle_is_respected() {
        let clean = Tuning {
            faults: false,
            ..Tuning::default()
        };
        for seed in 0..200 {
            assert!(ScenarioSpec::generate(seed, &clean).faults.is_clean());
        }
        // And with faults enabled, some scenario actually draws one.
        let t = Tuning::default();
        assert!((0..200).any(|s| !ScenarioSpec::generate(s, &t).faults.is_clean()));
    }
}
