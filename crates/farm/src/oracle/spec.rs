//! The spec state behind the oracle: a closed ITRON transition system.
//!
//! [`SpecState`] is the executable reference model that
//! [`super::Checker`] replays observation streams through — every
//! event-application rule lives here, unchanged from the replay-only
//! oracle. On top of event application ([`SpecState::apply`]) it
//! exposes the *closed-system* interface the `--explore` model checker
//! drives:
//!
//! * [`SpecState::enabled`] — the spec-derivable choice points at this
//!   state: the forced dispatch/preemption (always a singleton — the
//!   µ-ITRON scheduler is deterministic) or the set of armed timeouts.
//! * [`SpecState::step`] — pure successor construction: realize one
//!   [`Choice`] into observation events, apply them, and drain every
//!   mandated wakeup so the successor is quiescent. The realized event
//!   list is returned, so an exploration path is *by construction* a
//!   replayable observation stream.
//! * [`SpecState::canon_digest`] — canonical FNV-1a hash of the
//!   semantic state, for revisit deduplication.
//! * [`SpecState::invariant_violations`] — independent well-formedness
//!   checks (priority fixpoint, no stranded satisfiable waiters, ...)
//!   computed with always-healthy logic, so a mutated spec
//!   ([`SpecMutation`]) is caught the moment its state goes wrong.

use std::collections::{BTreeMap, VecDeque};

use rtk_core::{FlagWaitMode, MtxPolicy, ObsEvent, TaskId, WaitObj, WakeCode};

use crate::scenario::Fnv;

type Tid = u32;
type Er = Result<(), String>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Dormant,
    Ready,
    Running,
    Waiting,
    Suspend,
    WaitSuspend,
}

#[derive(Debug, Clone)]
struct TaskM {
    base: u8,
    cur: u8,
    state: TState,
    wait: Option<WaitObj>,
    deadline: Option<u64>,
    /// Held mutexes (raw ids) in acquisition order.
    held: Vec<u32>,
    /// Nested suspend count.
    suscnt: u32,
    /// Queued `tk_wup_tsk` requests.
    wupcnt: u32,
}

/// A `TA_TFIFO`/`TA_TPRI` wait queue mirroring the kernel's semantics:
/// entries carry the priority they were (re-)enqueued at; priority
/// insertion goes behind equal priorities; a reprioritised entry is
/// removed and re-enqueued (so it lands behind its new peers).
#[derive(Debug, Clone)]
struct Queue {
    pri_order: bool,
    entries: Vec<(Tid, u8)>,
}

impl Queue {
    fn new(pri_order: bool) -> Self {
        Queue {
            pri_order,
            entries: Vec::new(),
        }
    }

    fn enqueue(&mut self, tid: Tid, pri: u8) {
        if self.pri_order {
            let pos = self
                .entries
                .iter()
                .position(|&(_, p)| p > pri)
                .unwrap_or(self.entries.len());
            self.entries.insert(pos, (tid, pri));
        } else {
            self.entries.push((tid, pri));
        }
    }

    fn remove(&mut self, tid: Tid) -> bool {
        match self.entries.iter().position(|&(t, _)| t == tid) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    fn reprioritize(&mut self, tid: Tid, pri: u8) {
        if self.remove(tid) {
            self.enqueue(tid, pri);
        }
    }

    fn front(&self) -> Option<Tid> {
        self.entries.first().map(|&(t, _)| t)
    }

    fn pop(&mut self) -> Option<Tid> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0).0)
        }
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn iter_tids(&self) -> impl Iterator<Item = Tid> + '_ {
        self.entries.iter().map(|&(t, _)| t)
    }
}

#[derive(Debug, Clone)]
struct SemM {
    count: u32,
    max: u32,
    q: Queue,
}

#[derive(Debug, Clone)]
struct FlagM {
    pattern: u32,
    q: Queue,
}

#[derive(Debug, Clone)]
struct MbxM {
    msgs: usize,
    q: Queue,
}

#[derive(Debug, Clone)]
struct MbfM {
    bufsz: usize,
    used: usize,
    msgs: VecDeque<usize>,
    send_q: Queue,
    /// Payload length of each blocked sender.
    send_len: BTreeMap<Tid, usize>,
    recv_q: Queue,
}

#[derive(Debug, Clone)]
struct MtxM {
    policy: MtxPolicy,
    owner: Option<Tid>,
    q: Queue,
}

#[derive(Debug, Clone)]
struct MpfM {
    total: usize,
    free: usize,
    q: Queue,
}

/// Allocation alignment of the kernel's variable-size pools.
const MPL_ALIGN: usize = 4;

fn align_up(sz: usize) -> usize {
    (sz + MPL_ALIGN - 1) & !(MPL_ALIGN - 1)
}

/// First-fit arena shadow of one variable-size pool: the same
/// offset-keyed free/alloc maps the kernel keeps, so the spec computes
/// the exact offsets first-fit mandates and the exact coalescing a
/// release must perform.
#[derive(Debug, Clone)]
struct MplM {
    /// Free regions: offset -> length, coalesced.
    free: BTreeMap<usize, usize>,
    /// Live allocations: offset -> length (aligned).
    allocs: BTreeMap<usize, usize>,
    q: Queue,
}

impl MplM {
    /// First-fit allocation (mirrors `kernel::mpl::Mpl::try_alloc`).
    fn try_alloc(&mut self, sz: usize) -> Option<usize> {
        let sz = align_up(sz);
        let (off, len) = self
            .free
            .iter()
            .find(|&(_, len)| *len >= sz)
            .map(|(o, l)| (*o, *l))?;
        self.free.remove(&off);
        if len > sz {
            self.free.insert(off + sz, len - sz);
        }
        self.allocs.insert(off, sz);
        Some(off)
    }

    /// `true` when a request of `sz` (pre-alignment) would fit now.
    fn can_alloc(&self, sz: usize) -> bool {
        let sz = align_up(sz);
        self.free.values().any(|&len| len >= sz)
    }

    /// Releases an allocation, coalescing with free neighbours.
    fn release(&mut self, off: usize) -> Result<(), String> {
        let len = self.allocs.remove(&off).ok_or_else(|| {
            format!("release of offset {off} which the spec has no allocation at")
        })?;
        let mut start = off;
        let mut length = len;
        if let Some((&poff, &plen)) = self.free.range(..off).next_back() {
            if poff + plen == off {
                self.free.remove(&poff);
                start = poff;
                length += plen;
            }
        }
        if let Some(&nlen) = self.free.get(&(off + len)) {
            self.free.remove(&(off + len));
            length += nlen;
        }
        self.free.insert(start, length);
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct CycM {
    period: u64,
    /// Absolute tick of the next mandated activation, if armed.
    armed: Option<u64>,
}

#[derive(Debug, Clone, Default)]
struct AlmM {
    /// Absolute tick of the mandated (one-shot) activation, if armed.
    armed: Option<u64>,
}

/// The whole reference-model state: the executable µ-ITRON spec as
/// a value. Constructed empty ([`SpecState::default`]), advanced
/// either by replaying kernel observations ([`SpecState::apply`],
/// what [`super::Checker`] does) or by resolving nondeterministic
/// choices ([`SpecState::step`], what `rtk-farm --explore` does).
#[derive(Debug, Clone, Default)]
pub struct SpecState {
    tasks: BTreeMap<Tid, TaskM>,
    /// Ready queue in dispatch order (priority levels, FIFO within,
    /// preempted tasks re-enter at the head of their level).
    ready: Vec<(Tid, u8)>,
    running: Option<Tid>,
    /// `tk_dis_dsp`/`tk_loc_cpu` window: no dispatch, preemption or
    /// blocking may be observed while set.
    dispatch_disabled: bool,
    sems: BTreeMap<u32, SemM>,
    flags: BTreeMap<u32, FlagM>,
    mbxs: BTreeMap<u32, MbxM>,
    mbfs: BTreeMap<u32, MbfM>,
    mtxs: BTreeMap<u32, MtxM>,
    mpfs: BTreeMap<u32, MpfM>,
    mpls: BTreeMap<u32, MplM>,
    cycs: BTreeMap<u32, CycM>,
    alms: BTreeMap<u32, AlmM>,
    /// Wakeups the spec has mandated but the kernel has not yet
    /// reported. Non-empty ⇒ the very next event must be the front
    /// wakeup (wakeups are emitted contiguously after their stimulus).
    expected: VecDeque<(Tid, WaitObj, WakeCode)>,
    /// Deliberately-broken-rule switch for the mutation-sensitivity
    /// proofs; `None` (the default) is the faithful spec, so `Checker`
    /// replay is byte-identical to the pre-split oracle.
    mutation: Option<SpecMutation>,
}

fn flag_satisfied(pattern: u32, waiptn: u32, mode: FlagWaitMode) -> bool {
    if mode.and {
        pattern & waiptn == waiptn
    } else {
        pattern & waiptn != 0
    }
}

fn flag_clear(pattern: &mut u32, waiptn: u32, mode: FlagWaitMode) {
    if mode.clear_all {
        *pattern = 0;
    } else if mode.clear_bits {
        *pattern &= !waiptn;
    }
}

impl SpecState {
    fn task(&self, tid: Tid) -> Result<&TaskM, String> {
        self.tasks
            .get(&tid)
            .ok_or_else(|| format!("unknown tsk{tid}"))
    }

    fn task_mut(&mut self, tid: Tid) -> Result<&mut TaskM, String> {
        self.tasks
            .get_mut(&tid)
            .ok_or_else(|| format!("unknown tsk{tid}"))
    }

    /// The caller of a task-context service must be the running task.
    fn require_running(&self, tid: Tid) -> Er {
        if self.running == Some(tid) {
            Ok(())
        } else {
            Err(format!(
                "tsk{tid} performed a task-context operation but the spec's running task is {:?}",
                self.running
            ))
        }
    }

    // ------------------------------------------------------------------
    // Ready queue (mirrors the priority-preemptive scheduler)
    // ------------------------------------------------------------------

    fn ready_tail(&mut self, tid: Tid) {
        let pri = self.tasks[&tid].cur;
        let pos = self
            .ready
            .iter()
            .position(|&(_, p)| p > pri)
            .unwrap_or(self.ready.len());
        self.ready.insert(pos, (tid, pri));
    }

    fn ready_head(&mut self, tid: Tid) {
        let pri = self.tasks[&tid].cur;
        let pos = self
            .ready
            .iter()
            .position(|&(_, p)| p >= pri)
            .unwrap_or(self.ready.len());
        self.ready.insert(pos, (tid, pri));
    }

    fn ready_remove(&mut self, tid: Tid) {
        self.ready.retain(|&(t, _)| t != tid);
    }

    /// Rotates the ready entries of one priority level: the level's
    /// head moves behind its last peer (`tk_rot_rdq`).
    fn rotate_ready(&mut self, pri: u8) {
        let idxs: Vec<usize> = self
            .ready
            .iter()
            .enumerate()
            .filter(|&(_, &(_, p))| p == pri)
            .map(|(i, _)| i)
            .collect();
        if idxs.len() >= 2 {
            let head = self.ready.remove(idxs[0]);
            self.ready.insert(*idxs.last().expect("len >= 2"), head);
        }
    }

    /// Makes a waiting task ready — or SUSPENDED, when the wait was
    /// doubly blocked (µ-ITRON WAIT-SUSPEND) — and registers the
    /// mandated wakeup event.
    fn wake(&mut self, tid: Tid, code: WakeCode) -> Er {
        let t = self.task_mut(tid)?;
        let obj = t
            .wait
            .take()
            .ok_or_else(|| format!("spec woke tsk{tid} which is not waiting"))?;
        t.deadline = None;
        let suspended = t.state == TState::WaitSuspend;
        t.state = if suspended {
            TState::Suspend
        } else {
            TState::Ready
        };
        if !suspended {
            self.ready_tail(tid);
        }
        self.expected.push_back((tid, obj, code));
        Ok(())
    }

    /// Removes `tid` from the wait queue of whatever it is blocked on
    /// (plus the mbf sender-payload bookkeeping), without completing
    /// the wait. Returns the object, for the re-serve pass.
    fn detach(&mut self, tid: Tid) -> Option<WaitObj> {
        let obj = self.tasks.get(&tid)?.wait?;
        if let WaitObj::MbfSend(id, _) = obj {
            if let Some(m) = self.mbfs.get_mut(&id.raw()) {
                m.send_len.remove(&tid);
            }
        }
        if let Some(q) = self.wait_queue_mut(&obj) {
            q.remove(tid);
        }
        Some(obj)
    }

    /// Re-serves the queue a waiter was just removed from: waiters
    /// behind it may have become satisfiable (semaphore counts, mbf
    /// buffer space, mpl arena space) and µ-ITRON mandates waking them
    /// now, in queue order.
    fn reserve(&mut self, obj: WaitObj) -> Er {
        match obj {
            WaitObj::Sem(id, _) => self.sem_serve(id.raw()),
            WaitObj::MbfSend(id, _) => self.mbf_drain(id.raw()),
            WaitObj::Mpl(id, _) => self.mpl_serve(id.raw()),
            _ => Ok(()),
        }
    }

    /// Wakes satisfiable semaphore waiters strictly from the head.
    fn sem_serve(&mut self, id: u32) -> Er {
        while let Some(front) = self.sems.get(&id).and_then(|s| s.q.front()) {
            let req = match self.tasks.get(&front).and_then(|t| t.wait) {
                Some(WaitObj::Sem(_, req)) => req,
                _ => 1,
            };
            let sem = self.sems.get_mut(&id).expect("checked");
            if sem.count < req {
                break;
            }
            sem.count -= req;
            sem.q.pop();
            self.wake(front, WakeCode::Ok)?;
        }
        Ok(())
    }

    /// Moves blocked senders' messages into the buffer while space
    /// allows, strictly in queue order, waking them.
    fn mbf_drain(&mut self, id: u32) -> Er {
        loop {
            let Some(mbf) = self.mbfs.get_mut(&id) else {
                return Ok(());
            };
            let Some(front) = mbf.send_q.front() else {
                return Ok(());
            };
            let slen = mbf.send_len.get(&front).copied().unwrap_or(0);
            if mbf.used + slen > mbf.bufsz {
                return Ok(());
            }
            mbf.used += slen;
            mbf.msgs.push_back(slen);
            mbf.send_q.pop();
            mbf.send_len.remove(&front);
            self.wake(front, WakeCode::Ok)?;
        }
    }

    /// Serves queued pool waiters whose requests now fit, strictly in
    /// queue order, allocating in the shadow arena.
    fn mpl_serve(&mut self, id: u32) -> Er {
        loop {
            let Some(front) = self.mpls.get(&id).and_then(|p| p.q.front()) else {
                return Ok(());
            };
            let req = match self.tasks.get(&front).and_then(|t| t.wait) {
                Some(WaitObj::Mpl(_, sz)) => sz,
                _ => return Ok(()),
            };
            let pool = self.mpls.get_mut(&id).expect("checked");
            if pool.try_alloc(req).is_none() {
                return Ok(());
            }
            pool.q.pop();
            self.wake(front, WakeCode::Ok)?;
        }
    }

    // ------------------------------------------------------------------
    // Priorities: ceiling + transitive inheritance, by fixpoint
    // ------------------------------------------------------------------

    /// Recomputes every task's current priority from first principles:
    /// start at the base priority and relax downward (more urgent)
    /// through held ceiling mutexes and the current priorities of
    /// tasks waiting on held inheritance mutexes, until stable. Tasks
    /// whose priority changed are re-sorted in their wait queue (and
    /// the ready queue), mirroring the kernel's reprioritisation rule.
    fn recompute_priorities(&mut self) {
        let tids: Vec<Tid> = self.tasks.keys().copied().collect();
        let mut cur: BTreeMap<Tid, u8> = tids.iter().map(|&t| (t, self.tasks[&t].base)).collect();
        loop {
            let mut changed = false;
            for &tid in &tids {
                let mut p = self.tasks[&tid].base;
                for mid in &self.tasks[&tid].held {
                    let Some(m) = self.mtxs.get(mid) else {
                        continue;
                    };
                    match m.policy {
                        MtxPolicy::Ceiling(c) => p = p.min(c),
                        MtxPolicy::Inherit => {
                            for w in m.q.iter_tids() {
                                // A mutated spec (DirectInheritanceOnly)
                                // inherits only the waiters' *base*
                                // priorities — no transitive boost.
                                let wp =
                                    if self.mutation == Some(SpecMutation::DirectInheritanceOnly) {
                                        self.tasks[&w].base
                                    } else {
                                        cur[&w]
                                    };
                                p = p.min(wp);
                            }
                        }
                        _ => {}
                    }
                }
                if cur[&tid] != p {
                    cur.insert(tid, p);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for &tid in &tids {
            let new = cur[&tid];
            let old = self.tasks[&tid].cur;
            if new == old {
                continue;
            }
            self.tasks.get_mut(&tid).expect("listed").cur = new;
            match self.tasks[&tid].state {
                TState::Ready => {
                    self.ready_remove(tid);
                    self.ready_tail(tid);
                }
                TState::Waiting | TState::WaitSuspend => {
                    if let Some(obj) = self.tasks[&tid].wait {
                        if let Some(q) = self.wait_queue_mut(&obj) {
                            q.reprioritize(tid, new);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// The wait queue a blocked task sits in, if the object is modeled.
    fn wait_queue_mut(&mut self, obj: &WaitObj) -> Option<&mut Queue> {
        match obj {
            WaitObj::Sem(id, _) => self.sems.get_mut(&id.raw()).map(|o| &mut o.q),
            WaitObj::Flag(id, _, _) => self.flags.get_mut(&id.raw()).map(|o| &mut o.q),
            WaitObj::Mbx(id) => self.mbxs.get_mut(&id.raw()).map(|o| &mut o.q),
            WaitObj::MbfSend(id, _) => self.mbfs.get_mut(&id.raw()).map(|o| &mut o.send_q),
            WaitObj::MbfRecv(id) => self.mbfs.get_mut(&id.raw()).map(|o| &mut o.recv_q),
            WaitObj::Mtx(id) => self.mtxs.get_mut(&id.raw()).map(|o| &mut o.q),
            WaitObj::Mpf(id) => self.mpfs.get_mut(&id.raw()).map(|o| &mut o.q),
            WaitObj::Mpl(id, _) => self.mpls.get_mut(&id.raw()).map(|o| &mut o.q),
            WaitObj::Sleep | WaitObj::Delay => None,
        }
    }

    // ------------------------------------------------------------------
    // The replay step
    // ------------------------------------------------------------------

    /// Applies one observed kernel event, verifying it against the
    /// spec's mandated behaviour; an `Err` carries the divergence
    /// detail.
    pub fn apply(&mut self, ev: &ObsEvent) -> Er {
        // Contiguity rule: while mandated wakeups are outstanding, the
        // next event must be exactly the front one.
        if let Some(&(etid, eobj, ecode)) = self.expected.front() {
            match ev {
                ObsEvent::Wakeup { tid, obj, code }
                    if tid.raw() == etid && *obj == eobj && *code == ecode =>
                {
                    self.expected.pop_front();
                    return Ok(());
                }
                _ => {
                    return Err(format!(
                        "spec mandates wakeup of tsk{etid} from {} ({ecode:?}) here",
                        eobj.describe()
                    ));
                }
            }
        }

        match *ev {
            ObsEvent::TaskCreate { tid, pri } => {
                self.tasks.insert(
                    tid.raw(),
                    TaskM {
                        base: pri,
                        cur: pri,
                        state: TState::Dormant,
                        wait: None,
                        deadline: None,
                        held: Vec::new(),
                        suscnt: 0,
                        wupcnt: 0,
                    },
                );
                Ok(())
            }
            ObsEvent::TaskStart { tid } => {
                let t = self.task_mut(tid.raw())?;
                if t.state != TState::Dormant {
                    return Err(format!("started task is {:?}, spec says DORMANT", t.state));
                }
                t.state = TState::Ready;
                t.cur = t.base;
                self.ready_tail(tid.raw());
                Ok(())
            }
            ObsEvent::TaskExit { tid } => {
                let tid = tid.raw();
                self.require_running(tid)?;
                let held = std::mem::take(&mut self.task_mut(tid)?.held);
                for mid in held {
                    self.release_mutex(mid)?;
                }
                let t = self.task_mut(tid)?;
                t.state = TState::Dormant;
                t.wait = None;
                t.deadline = None;
                t.suscnt = 0;
                t.wupcnt = 0;
                self.running = None;
                // An exiting task takes its dispatch-disable window
                // with it.
                self.dispatch_disabled = false;
                self.recompute_priorities();
                Ok(())
            }
            ObsEvent::TaskTerminate { tid } => {
                let tid = tid.raw();
                if self.task(tid)?.state == TState::Dormant {
                    return Err("terminate of a task the spec says is DORMANT".into());
                }
                // Order mirrors the kernel: held mutexes transfer
                // first (their wakeups), then the abandoned wait's
                // queue is re-served (its wakeups).
                let held = std::mem::take(&mut self.task_mut(tid)?.held);
                for mid in held {
                    self.release_mutex(mid)?;
                }
                let detached = self.detach(tid);
                if self.running == Some(tid) {
                    self.running = None;
                    // A dispatch-disable window dies with the running
                    // task it belongs to.
                    self.dispatch_disabled = false;
                } else {
                    self.ready_remove(tid);
                }
                let t = self.task_mut(tid)?;
                t.state = TState::Dormant;
                t.wait = None;
                t.deadline = None;
                t.suscnt = 0;
                t.wupcnt = 0;
                if let Some(obj) = detached {
                    self.reserve(obj)?;
                }
                self.recompute_priorities();
                Ok(())
            }
            ObsEvent::TaskDelete { tid } => {
                let tid = tid.raw();
                if self.task(tid)?.state != TState::Dormant {
                    return Err("delete of a task the spec says is not DORMANT".into());
                }
                self.tasks.remove(&tid);
                Ok(())
            }
            ObsEvent::Suspend { tid } => {
                let tid = tid.raw();
                let t = self.task_mut(tid)?;
                match t.state {
                    TState::Dormant => Err("suspend of a DORMANT task".into()),
                    TState::Ready => {
                        t.suscnt += 1;
                        t.state = TState::Suspend;
                        self.ready_remove(tid);
                        Ok(())
                    }
                    TState::Waiting => {
                        t.suscnt += 1;
                        t.state = TState::WaitSuspend;
                        Ok(())
                    }
                    TState::Running => {
                        t.suscnt += 1;
                        t.state = TState::Suspend;
                        self.running = None;
                        Ok(())
                    }
                    TState::Suspend | TState::WaitSuspend => {
                        t.suscnt += 1;
                        Ok(())
                    }
                }
            }
            ObsEvent::Resume { tid, force } => {
                let tid = tid.raw();
                let t = self.task_mut(tid)?;
                if !matches!(t.state, TState::Suspend | TState::WaitSuspend) {
                    return Err(format!(
                        "resume of a task the spec says is {:?}, not suspended",
                        t.state
                    ));
                }
                if t.suscnt == 0 {
                    return Err("resume with a zero spec suspend count".into());
                }
                t.suscnt = if force { 0 } else { t.suscnt - 1 };
                if t.suscnt == 0 {
                    match t.state {
                        TState::Suspend => {
                            t.state = TState::Ready;
                            self.ready_tail(tid);
                        }
                        TState::WaitSuspend => t.state = TState::Waiting,
                        _ => unreachable!("state checked above"),
                    }
                }
                Ok(())
            }
            ObsEvent::RelWai { tid } => {
                let tid = tid.raw();
                if !matches!(self.task(tid)?.state, TState::Waiting | TState::WaitSuspend) {
                    return Err("forced release of a task the spec says is not waiting".into());
                }
                let detached = self.detach(tid);
                self.wake(tid, WakeCode::Released)?;
                if let Some(obj) = detached {
                    self.reserve(obj)?;
                }
                self.recompute_priorities();
                Ok(())
            }
            ObsEvent::RotRdq { pri } => {
                self.rotate_ready(pri);
                Ok(())
            }
            ObsEvent::WupTsk { tid } => {
                let tid = tid.raw();
                let t = self.task(tid)?;
                let sleeping = matches!(t.state, TState::Waiting | TState::WaitSuspend)
                    && t.wait == Some(WaitObj::Sleep);
                if sleeping {
                    self.wake(tid, WakeCode::Ok)
                } else if t.state == TState::Dormant {
                    Err("wakeup of a DORMANT task".into())
                } else {
                    self.task_mut(tid)?.wupcnt += 1;
                    Ok(())
                }
            }
            ObsEvent::WupConsume { tid } => {
                let tid = tid.raw();
                self.require_running(tid)?;
                let t = self.task_mut(tid)?;
                if t.wupcnt == 0 {
                    return Err("consumed a queued wakeup the spec does not have".into());
                }
                t.wupcnt -= 1;
                Ok(())
            }
            ObsEvent::DispCtl { disabled } => {
                self.dispatch_disabled = disabled;
                Ok(())
            }
            ObsEvent::PriChange { tid, base } => {
                self.task_mut(tid.raw())?.base = base;
                self.recompute_priorities();
                Ok(())
            }
            ObsEvent::Dispatch { tid, pri } => {
                let tid = tid.raw();
                if self.dispatch_disabled {
                    return Err("dispatch inside a dispatch-disabled window".into());
                }
                if let Some(r) = self.running {
                    return Err(format!("dispatch while spec still has tsk{r} running"));
                }
                match self.ready.first() {
                    Some(&(head, _)) if head == tid => {}
                    Some(&(head, hp)) => {
                        return Err(format!(
                            "spec's highest-priority ready task is tsk{head} (pri {hp}), not the dispatched one"
                        ));
                    }
                    None => return Err("dispatch with an empty spec ready queue".into()),
                }
                let cur = self.task(tid)?.cur;
                if cur != pri {
                    return Err(format!(
                        "dispatched at priority {pri}, spec computes current priority {cur}"
                    ));
                }
                self.ready.remove(0);
                self.task_mut(tid)?.state = TState::Running;
                self.running = Some(tid);
                Ok(())
            }
            ObsEvent::Preempt { tid } => {
                let tid = tid.raw();
                if self.dispatch_disabled {
                    return Err("preemption inside a dispatch-disabled window".into());
                }
                self.require_running(tid)?;
                self.task_mut(tid)?.state = TState::Ready;
                self.running = None;
                self.ready_head(tid);
                Ok(())
            }
            ObsEvent::Block {
                tid,
                obj,
                deadline_tick,
            } => {
                let tid = tid.raw();
                self.require_running(tid)?;
                if self.dispatch_disabled {
                    return Err("blocking call inside a dispatch-disabled window".into());
                }
                self.check_would_block(tid, &obj)?;
                if obj == WaitObj::Sleep && self.task(tid)?.wupcnt > 0 {
                    return Err("blocked in tk_slp_tsk with a queued wakeup request".into());
                }
                let pri = self.task(tid)?.cur;
                if let WaitObj::MbfSend(id, len) = obj {
                    if let Some(m) = self.mbfs.get_mut(&id.raw()) {
                        m.send_len.insert(tid, len);
                    }
                }
                if let Some(q) = self.wait_queue_mut(&obj) {
                    q.enqueue(tid, pri);
                }
                let t = self.task_mut(tid)?;
                t.state = TState::Waiting;
                t.wait = Some(obj);
                t.deadline = deadline_tick;
                self.running = None;
                self.recompute_priorities();
                Ok(())
            }
            ObsEvent::Wakeup { tid, obj, .. } => Err(format!(
                "kernel woke tsk{} from {} but the spec mandates no wakeup here",
                tid.raw(),
                obj.describe()
            )),
            ObsEvent::TimerFire { tid, tick } => {
                let tid = tid.raw();
                let t = self.task(tid)?;
                if !matches!(t.state, TState::Waiting | TState::WaitSuspend) {
                    return Err(format!(
                        "timeout fired for non-waiting task ({:?})",
                        t.state
                    ));
                }
                match t.deadline {
                    Some(d) if d == tick => {}
                    Some(d) => {
                        return Err(format!(
                            "timeout fired at tick {tick}, spec armed it for tick {d}"
                        ));
                    }
                    None => return Err("timeout fired for a wait without a deadline".into()),
                }
                let detached = self.detach(tid);
                self.wake(tid, WakeCode::Timeout)?;
                // A mutated spec (SkipTimeoutReserve) forgets the
                // mandated re-serve of the queue the waiter left.
                if self.mutation != Some(SpecMutation::SkipTimeoutReserve) {
                    if let Some(obj) = detached {
                        self.reserve(obj)?;
                    }
                }
                self.recompute_priorities();
                Ok(())
            }

            ObsEvent::SemCreate {
                id,
                init,
                max,
                pri_order,
            } => {
                self.sems.insert(
                    id.raw(),
                    SemM {
                        count: init,
                        max,
                        q: Queue::new(pri_order),
                    },
                );
                Ok(())
            }
            ObsEvent::SemSignal { id, cnt } => {
                let id = id.raw();
                let sem = self
                    .sems
                    .get_mut(&id)
                    .ok_or_else(|| format!("unknown sem{id}"))?;
                if sem.count.checked_add(cnt).is_none_or(|v| v > sem.max) {
                    return Err(format!(
                        "signal of {cnt} overflows the spec's count {}/{}",
                        sem.count, sem.max
                    ));
                }
                sem.count += cnt;
                self.sem_serve(id)
            }
            ObsEvent::SemTake { id, tid, cnt } => {
                self.require_running(tid.raw())?;
                let sem = self
                    .sems
                    .get_mut(&id.raw())
                    .ok_or_else(|| format!("unknown {id}"))?;
                if !sem.q.is_empty() {
                    return Err("immediate acquisition barged past waiting tasks".into());
                }
                if sem.count < cnt {
                    return Err(format!(
                        "immediate acquisition of {cnt} with spec count {}",
                        sem.count
                    ));
                }
                sem.count -= cnt;
                Ok(())
            }

            ObsEvent::FlagCreate {
                id,
                init,
                pri_order,
            } => {
                self.flags.insert(
                    id.raw(),
                    FlagM {
                        pattern: init,
                        q: Queue::new(pri_order),
                    },
                );
                Ok(())
            }
            ObsEvent::FlagSet { id, ptn } => {
                let id = id.raw();
                let flag = self
                    .flags
                    .get_mut(&id)
                    .ok_or_else(|| format!("unknown flg{id}"))?;
                flag.pattern |= ptn;
                // Walk the queue in order, re-checking after each
                // release (clears can unsatisfy later waiters).
                let snapshot: Vec<Tid> = flag.q.iter_tids().collect();
                for tid in snapshot {
                    let (waiptn, mode) = match self.tasks.get(&tid).and_then(|t| t.wait) {
                        Some(WaitObj::Flag(_, p, m)) => (p, m),
                        _ => continue,
                    };
                    let flag = self.flags.get_mut(&id).expect("checked");
                    if flag_satisfied(flag.pattern, waiptn, mode) {
                        flag_clear(&mut flag.pattern, waiptn, mode);
                        flag.q.remove(tid);
                        self.wake(tid, WakeCode::Ok)?;
                    }
                }
                Ok(())
            }
            ObsEvent::FlagClear { id, mask } => {
                let flag = self
                    .flags
                    .get_mut(&id.raw())
                    .ok_or_else(|| format!("unknown {id}"))?;
                flag.pattern &= mask;
                Ok(())
            }
            ObsEvent::FlagTake { id, tid, ptn, mode } => {
                self.require_running(tid.raw())?;
                let flag = self
                    .flags
                    .get_mut(&id.raw())
                    .ok_or_else(|| format!("unknown {id}"))?;
                if !flag_satisfied(flag.pattern, ptn, mode) {
                    return Err(format!(
                        "immediate flag wait satisfied by the kernel but not by the spec pattern {:#06x}",
                        flag.pattern
                    ));
                }
                flag_clear(&mut flag.pattern, ptn, mode);
                Ok(())
            }

            ObsEvent::MbxCreate { id, pri_order } => {
                self.mbxs.insert(
                    id.raw(),
                    MbxM {
                        msgs: 0,
                        q: Queue::new(pri_order),
                    },
                );
                Ok(())
            }
            ObsEvent::MbxSend { id } => {
                let mbx = self
                    .mbxs
                    .get_mut(&id.raw())
                    .ok_or_else(|| format!("unknown {id}"))?;
                if let Some(receiver) = mbx.q.pop() {
                    self.wake(receiver, WakeCode::Ok)?;
                } else {
                    mbx.msgs += 1;
                }
                Ok(())
            }
            ObsEvent::MbxTake { id, tid } => {
                self.require_running(tid.raw())?;
                let mbx = self
                    .mbxs
                    .get_mut(&id.raw())
                    .ok_or_else(|| format!("unknown {id}"))?;
                if mbx.msgs == 0 {
                    return Err("immediate receive from a mailbox the spec says is empty".into());
                }
                mbx.msgs -= 1;
                Ok(())
            }

            ObsEvent::MbfCreate {
                id,
                bufsz,
                pri_order,
                ..
            } => {
                self.mbfs.insert(
                    id.raw(),
                    MbfM {
                        bufsz,
                        used: 0,
                        msgs: VecDeque::new(),
                        send_q: Queue::new(pri_order),
                        send_len: BTreeMap::new(),
                        recv_q: Queue::new(pri_order),
                    },
                );
                Ok(())
            }
            ObsEvent::MbfSend { id, len } => {
                let mbf = self
                    .mbfs
                    .get_mut(&id.raw())
                    .ok_or_else(|| format!("unknown {id}"))?;
                let direct = mbf.msgs.is_empty() && mbf.send_q.is_empty();
                if direct {
                    if let Some(receiver) = mbf.recv_q.pop() {
                        return self.wake(receiver, WakeCode::Ok);
                    }
                }
                if mbf.send_q.is_empty() && mbf.used + len <= mbf.bufsz {
                    mbf.used += len;
                    mbf.msgs.push_back(len);
                    Ok(())
                } else {
                    Err("immediate send the spec says must block".into())
                }
            }
            ObsEvent::MbfRecv { id, tid } => {
                let id = id.raw();
                self.require_running(tid.raw())?;
                let mbf = self
                    .mbfs
                    .get_mut(&id)
                    .ok_or_else(|| format!("unknown mbf{id}"))?;
                if let Some(len) = mbf.msgs.pop_front() {
                    mbf.used -= len;
                    // Buffer space freed: blocked senders move in,
                    // strictly in queue order.
                    self.mbf_drain(id)
                } else if let Some(sender) = mbf.send_q.pop() {
                    mbf.send_len.remove(&sender);
                    self.wake(sender, WakeCode::Ok)
                } else {
                    Err("immediate receive the spec says must block".into())
                }
            }

            ObsEvent::MtxCreate { id, policy } => {
                self.mtxs.insert(
                    id.raw(),
                    MtxM {
                        policy,
                        owner: None,
                        q: Queue::new(!matches!(policy, MtxPolicy::Fifo)),
                    },
                );
                Ok(())
            }
            ObsEvent::MtxLock { id, tid } => {
                let tid = tid.raw();
                self.require_running(tid)?;
                let mtx = self
                    .mtxs
                    .get_mut(&id.raw())
                    .ok_or_else(|| format!("unknown {id}"))?;
                if let Some(owner) = mtx.owner {
                    return Err(format!(
                        "immediate lock of a mutex the spec says tsk{owner} owns"
                    ));
                }
                mtx.owner = Some(tid);
                self.task_mut(tid)?.held.push(id.raw());
                self.recompute_priorities();
                Ok(())
            }
            ObsEvent::MtxUnlock { id, tid } => {
                let tid = tid.raw();
                self.require_running(tid)?;
                let id = id.raw();
                let owner = self
                    .mtxs
                    .get(&id)
                    .ok_or_else(|| format!("unknown mtx{id}"))?
                    .owner;
                if owner != Some(tid) {
                    return Err(format!(
                        "unlock by tsk{tid} of a mutex the spec says {owner:?} owns"
                    ));
                }
                self.task_mut(tid)?.held.retain(|m| *m != id);
                self.release_mutex(id)?;
                self.recompute_priorities();
                Ok(())
            }

            ObsEvent::MpfCreate {
                id,
                blocks,
                pri_order,
            } => {
                self.mpfs.insert(
                    id.raw(),
                    MpfM {
                        total: blocks,
                        free: blocks,
                        q: Queue::new(pri_order),
                    },
                );
                Ok(())
            }
            ObsEvent::MpfTake { id, tid } => {
                self.require_running(tid.raw())?;
                let pool = self
                    .mpfs
                    .get_mut(&id.raw())
                    .ok_or_else(|| format!("unknown {id}"))?;
                if !pool.q.is_empty() {
                    return Err("immediate block acquisition barged past waiting tasks".into());
                }
                if pool.free == 0 {
                    return Err("immediate block acquisition from an exhausted pool".into());
                }
                pool.free -= 1;
                Ok(())
            }
            ObsEvent::MpfRel { id } => {
                let pool = self
                    .mpfs
                    .get_mut(&id.raw())
                    .ok_or_else(|| format!("unknown {id}"))?;
                if let Some(waiter) = pool.q.pop() {
                    // Direct handoff: the block never returns to the
                    // free list.
                    self.wake(waiter, WakeCode::Ok)?;
                } else {
                    if pool.free >= pool.total {
                        return Err("release would exceed the pool's block count".into());
                    }
                    pool.free += 1;
                }
                Ok(())
            }

            ObsEvent::MplCreate {
                id,
                size,
                pri_order,
            } => {
                let mut free = BTreeMap::new();
                free.insert(0, size);
                self.mpls.insert(
                    id.raw(),
                    MplM {
                        free,
                        allocs: BTreeMap::new(),
                        q: Queue::new(pri_order),
                    },
                );
                Ok(())
            }
            ObsEvent::MplTake { id, tid, size, off } => {
                self.require_running(tid.raw())?;
                let pool = self
                    .mpls
                    .get_mut(&id.raw())
                    .ok_or_else(|| format!("unknown {id}"))?;
                if !pool.q.is_empty() {
                    return Err("immediate allocation barged past waiting tasks".into());
                }
                match pool.try_alloc(size) {
                    Some(spec_off) if spec_off == off => Ok(()),
                    Some(spec_off) => Err(format!(
                        "allocated at offset {off}, first-fit mandates offset {spec_off}"
                    )),
                    None => Err(format!(
                        "immediate allocation of {size} bytes the spec says cannot fit"
                    )),
                }
            }
            ObsEvent::MplRel { id, off } => {
                let id = id.raw();
                let pool = self
                    .mpls
                    .get_mut(&id)
                    .ok_or_else(|| format!("unknown mpl{id}"))?;
                pool.release(off)?;
                self.mpl_serve(id)
            }

            ObsEvent::CycCreate {
                id,
                period_ticks,
                first_tick,
            } => {
                self.cycs.insert(
                    id.raw(),
                    CycM {
                        period: period_ticks,
                        armed: first_tick,
                    },
                );
                Ok(())
            }
            ObsEvent::CycStart { id, at_tick } => {
                let cyc = self
                    .cycs
                    .get_mut(&id.raw())
                    .ok_or_else(|| format!("unknown {id}"))?;
                cyc.armed = Some(at_tick);
                Ok(())
            }
            ObsEvent::CycStop { id } => {
                let cyc = self
                    .cycs
                    .get_mut(&id.raw())
                    .ok_or_else(|| format!("unknown {id}"))?;
                cyc.armed = None;
                Ok(())
            }
            ObsEvent::CycFire { id, tick } => {
                let cyc = self
                    .cycs
                    .get_mut(&id.raw())
                    .ok_or_else(|| format!("unknown {id}"))?;
                match cyc.armed {
                    Some(at) if at == tick => {
                        // The next activation is one period on.
                        cyc.armed = Some(tick + cyc.period);
                        Ok(())
                    }
                    Some(at) => Err(format!(
                        "cyclic fired at tick {tick}, spec armed it for tick {at}"
                    )),
                    None => Err("cyclic fired while the spec says it is stopped".into()),
                }
            }
            ObsEvent::AlmArm { id, at_tick } => {
                self.alms.entry(id.raw()).or_default().armed = Some(at_tick);
                Ok(())
            }
            ObsEvent::AlmStop { id } => {
                self.alms.entry(id.raw()).or_default().armed = None;
                Ok(())
            }
            ObsEvent::AlmFire { id, tick } => {
                let alm = self
                    .alms
                    .get_mut(&id.raw())
                    .ok_or_else(|| format!("unknown {id}"))?;
                match alm.armed.take() {
                    Some(at) if at == tick => Ok(()),
                    Some(at) => Err(format!(
                        "alarm fired at tick {tick}, spec armed it for tick {at}"
                    )),
                    None => Err("alarm fired while the spec says it is disarmed".into()),
                }
            }
        }
    }

    /// Releases a mutex whose owner gives it up (unlock, exit or
    /// termination): ownership transfers to the head waiter (who
    /// wakes), or clears.
    fn release_mutex(&mut self, id: u32) -> Er {
        let mtx = self
            .mtxs
            .get_mut(&id)
            .ok_or_else(|| format!("unknown mtx{id}"))?;
        match mtx.q.pop() {
            Some(next) => {
                mtx.owner = Some(next);
                self.task_mut(next)?.held.push(id);
                self.wake(next, WakeCode::Ok)?;
            }
            None => mtx.owner = None,
        }
        Ok(())
    }

    /// Verifies that, per the spec, the operation behind `obj` cannot
    /// complete immediately for `tid` (the kernel decided to block).
    fn check_would_block(&self, tid: Tid, obj: &WaitObj) -> Er {
        let blocks = match *obj {
            WaitObj::Sleep | WaitObj::Delay => true,
            WaitObj::Sem(id, cnt) => self
                .sems
                .get(&id.raw())
                .is_none_or(|s| !(s.q.is_empty() && s.count >= cnt)),
            WaitObj::Flag(id, ptn, mode) => self
                .flags
                .get(&id.raw())
                .is_none_or(|f| !flag_satisfied(f.pattern, ptn, mode)),
            WaitObj::Mbx(id) => self.mbxs.get(&id.raw()).is_none_or(|m| m.msgs == 0),
            WaitObj::MbfSend(id, len) => self.mbfs.get(&id.raw()).is_none_or(|m| {
                let direct = m.msgs.is_empty() && m.send_q.is_empty() && !m.recv_q.is_empty();
                let fits = m.send_q.is_empty() && m.used + len <= m.bufsz;
                !(direct || fits)
            }),
            WaitObj::MbfRecv(id) => self
                .mbfs
                .get(&id.raw())
                .is_none_or(|m| m.msgs.is_empty() && m.send_q.is_empty()),
            WaitObj::Mtx(id) => self
                .mtxs
                .get(&id.raw())
                .is_none_or(|m| m.owner.is_some() && m.owner != Some(tid)),
            WaitObj::Mpf(id) => self
                .mpfs
                .get(&id.raw())
                .is_none_or(|p| !(p.q.is_empty() && p.free > 0)),
            WaitObj::Mpl(id, sz) => self
                .mpls
                .get(&id.raw())
                .is_none_or(|p| !(p.q.is_empty() && p.can_alloc(sz))),
        };
        if blocks {
            Ok(())
        } else {
            Err(format!(
                "kernel blocked on {} but the spec says the request completes immediately",
                obj.describe()
            ))
        }
    }
}
/// One resolvable nondeterministic choice at a quiescent spec state.
///
/// Scheduler decisions (`Dispatch`/`Preempt`) are *forced*: the
/// priority-preemptive scheduler is deterministic, so when one is
/// enabled it is the only choice. The genuine branch points are which
/// armed `Timeout` fires first when several share the earliest tick,
/// and which environment `Stimulus` (an IRQ signal, a cyclic
/// activation, a program operation) happens next — the explore driver
/// owns those.
#[derive(Debug, Clone, PartialEq)]
pub enum Choice {
    /// Dispatch the ready-queue head.
    Dispatch {
        /// Raw task id of the mandated ready-queue head.
        tid: u32,
        /// The spec-computed current priority it must run at.
        pri: u8,
    },
    /// Preempt the running task (a more urgent task became ready).
    Preempt {
        /// Raw task id of the currently running task.
        tid: u32,
    },
    /// Fire the armed timeout of one waiting task.
    Timeout {
        /// Raw task id whose wait deadline expires.
        tid: u32,
        /// Absolute tick the deadline is armed for.
        tick: u64,
    },
    /// Environment/program stimulus: an externally chosen event
    /// sequence (IRQ signal, cyclic fire, a task's next operation)
    /// applied verbatim, with mandated wakeups drained after each.
    Stimulus(Vec<ObsEvent>),
}

/// A deliberately broken spec rule, for the mutation-sensitivity
/// proofs (`crates/farm/tests/explore.rs`): exploration must catch
/// each of these while thousands of random-seed replays do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecMutation {
    /// After a timed-out waiter detaches from its queue, skip the
    /// mandated re-serve pass — waiters behind it that became
    /// satisfiable stay blocked.
    SkipTimeoutReserve,
    /// Priority inheritance uses only the waiters' *base* priorities:
    /// no transitive propagation through chained inheritance mutexes.
    DirectInheritanceOnly,
}

impl TState {
    fn tag(self) -> u64 {
        match self {
            TState::Dormant => 1,
            TState::Ready => 2,
            TState::Running => 3,
            TState::Waiting => 4,
            TState::Suspend => 5,
            TState::WaitSuspend => 6,
        }
    }
}

fn h_opt(h: &mut Fnv, v: Option<u64>) {
    match v {
        None => h.u64(0),
        Some(x) => {
            h.u64(1);
            h.u64(x);
        }
    }
}

fn h_queue(h: &mut Fnv, q: &Queue) {
    h.u64(u64::from(q.pri_order));
    h.u64(q.entries.len() as u64);
    for &(t, p) in &q.entries {
        h.u64(u64::from(t));
        h.u64(u64::from(p));
    }
}

fn h_mode(h: &mut Fnv, m: FlagWaitMode) {
    h.u64(u64::from(m.and) | u64::from(m.clear_all) << 1 | u64::from(m.clear_bits) << 2);
}

fn h_wait(h: &mut Fnv, obj: &WaitObj) {
    match *obj {
        WaitObj::Sleep => h.u64(1),
        WaitObj::Delay => h.u64(2),
        WaitObj::Sem(id, n) => {
            h.u64(3);
            h.u64(u64::from(id.raw()));
            h.u64(u64::from(n));
        }
        WaitObj::Flag(id, ptn, mode) => {
            h.u64(4);
            h.u64(u64::from(id.raw()));
            h.u64(u64::from(ptn));
            h_mode(h, mode);
        }
        WaitObj::Mbx(id) => {
            h.u64(5);
            h.u64(u64::from(id.raw()));
        }
        WaitObj::MbfSend(id, len) => {
            h.u64(6);
            h.u64(u64::from(id.raw()));
            h.u64(len as u64);
        }
        WaitObj::MbfRecv(id) => {
            h.u64(7);
            h.u64(u64::from(id.raw()));
        }
        WaitObj::Mtx(id) => {
            h.u64(8);
            h.u64(u64::from(id.raw()));
        }
        WaitObj::Mpf(id) => {
            h.u64(9);
            h.u64(u64::from(id.raw()));
        }
        WaitObj::Mpl(id, sz) => {
            h.u64(10);
            h.u64(u64::from(id.raw()));
            h.u64(sz as u64);
        }
    }
}

fn h_code(h: &mut Fnv, c: WakeCode) {
    h.u64(match c {
        WakeCode::Ok => 1,
        WakeCode::Timeout => 2,
        WakeCode::Released => 3,
        WakeCode::Deleted => 4,
    });
}

impl SpecState {
    /// A fresh spec state: no objects, no tasks, CPU idle.
    pub fn new() -> SpecState {
        SpecState::default()
    }

    /// A fresh spec state carrying a [`SpecMutation`] — the testing
    /// hook behind the mutation-sensitivity proofs.
    pub fn with_mutation(mutation: SpecMutation) -> SpecState {
        SpecState {
            mutation: Some(mutation),
            ..SpecState::default()
        }
    }

    /// The front of the mandated-wakeup queue: the wakeup that must be
    /// the very next observed event, if any. Always `None` for states
    /// produced by [`SpecState::step`] (it drains the queue).
    pub fn pending_wakeup(&self) -> Option<(u32, WaitObj, WakeCode)> {
        self.expected.front().copied()
    }

    /// The running task's raw id, if any.
    pub fn running(&self) -> Option<u32> {
        self.running
    }

    /// The ready-queue head as `(raw tid, current priority)`.
    pub fn ready_front(&self) -> Option<(u32, u8)> {
        self.ready.first().copied()
    }

    /// The spec-computed current priority of a task (base relaxed
    /// through ceilings and transitive inheritance).
    pub fn current_priority(&self, tid: u32) -> Option<u8> {
        self.tasks.get(&tid).map(|t| t.cur)
    }

    /// `true` while a `tk_dis_dsp`/`tk_loc_cpu` window is open.
    pub fn is_dispatch_disabled(&self) -> bool {
        self.dispatch_disabled
    }

    /// `true` when the task is blocked (WAITING or WAITING-SUSPENDED).
    pub fn is_waiting(&self, tid: u32) -> bool {
        self.tasks
            .get(&tid)
            .is_some_and(|t| matches!(t.state, TState::Waiting | TState::WaitSuspend))
    }

    /// Raw ids of every blocked task, ascending.
    pub fn waiting_tasks(&self) -> Vec<u32> {
        self.tasks
            .iter()
            .filter(|(_, t)| matches!(t.state, TState::Waiting | TState::WaitSuspend))
            .map(|(&tid, _)| tid)
            .collect()
    }

    /// The armed absolute-tick deadline of a task's wait, if any.
    pub fn deadline(&self, tid: u32) -> Option<u64> {
        self.tasks.get(&tid).and_then(|t| t.deadline)
    }

    /// The next mandated activation tick of a cyclic handler.
    pub fn cyc_next_fire(&self, id: u32) -> Option<u64> {
        self.cycs.get(&id).and_then(|c| c.armed)
    }

    /// `true` when the spec says a wait on `obj` by `tid` blocks (the
    /// request cannot complete immediately).
    pub fn would_block(&self, tid: u32, obj: &WaitObj) -> bool {
        self.check_would_block(tid, obj).is_ok()
    }

    /// The resolvable choices at this (quiescent) state. Exactly one
    /// of three shapes:
    ///
    /// * `[Dispatch]` — CPU idle, ready queue non-empty: the scheduler
    ///   must dispatch the head. Forced singleton.
    /// * `[Preempt]` — a strictly more urgent task is ready behind a
    ///   running one: preemption is mandated. Forced singleton.
    /// * the armed timeouts, sorted by `(tick, tid)` — every waiting
    ///   task with a deadline, at the tick it would fire. The caller
    ///   owns time: only timeouts at the chosen current tick are
    ///   firable now, and ties at that tick are the real branch.
    ///
    /// Environment stimuli ([`Choice::Stimulus`]) are by nature not
    /// derivable from spec state; the explore driver merges its own
    /// stimulus candidates with this set. A state with a pending
    /// mandated wakeup (never produced by [`SpecState::step`]) has no
    /// choices.
    pub fn enabled(&self) -> Vec<Choice> {
        if !self.expected.is_empty() {
            return Vec::new();
        }
        if !self.dispatch_disabled {
            match self.running {
                None => {
                    if let Some(&(tid, _)) = self.ready.first() {
                        return vec![Choice::Dispatch {
                            tid,
                            pri: self.tasks[&tid].cur,
                        }];
                    }
                }
                Some(r) => {
                    if let Some(&(_, hp)) = self.ready.first() {
                        if hp < self.tasks[&r].cur {
                            return vec![Choice::Preempt { tid: r }];
                        }
                    }
                }
            }
        }
        let mut outs: Vec<(u64, u32)> = self
            .tasks
            .iter()
            .filter(|(_, t)| matches!(t.state, TState::Waiting | TState::WaitSuspend))
            .filter_map(|(&tid, t)| t.deadline.map(|tick| (tick, tid)))
            .collect();
        outs.sort_unstable();
        outs.into_iter()
            .map(|(tick, tid)| Choice::Timeout { tid, tick })
            .collect()
    }

    /// Pure successor construction: realizes `choice` into observation
    /// events, applies them, and drains every mandated wakeup after
    /// each one (the contiguity the kernel itself guarantees). Returns
    /// the successor and the full realized event list — an exploration
    /// path is therefore a replayable observation stream by
    /// construction.
    pub fn step(&self, choice: &Choice) -> Result<(SpecState, Vec<ObsEvent>), String> {
        let realized: Vec<ObsEvent> = match choice {
            Choice::Dispatch { tid, pri } => vec![ObsEvent::Dispatch {
                tid: TaskId::from_raw(*tid),
                pri: *pri,
            }],
            Choice::Preempt { tid } => vec![ObsEvent::Preempt {
                tid: TaskId::from_raw(*tid),
            }],
            Choice::Timeout { tid, tick } => vec![ObsEvent::TimerFire {
                tid: TaskId::from_raw(*tid),
                tick: *tick,
            }],
            Choice::Stimulus(evs) => evs.clone(),
        };
        let mut next = self.clone();
        let mut events = Vec::with_capacity(realized.len());
        for ev in realized {
            next.apply(&ev)?;
            events.push(ev);
            while let Some((tid, obj, code)) = next.pending_wakeup() {
                let wake = ObsEvent::Wakeup {
                    tid: TaskId::from_raw(tid),
                    obj,
                    code,
                };
                next.apply(&wake)?;
                events.push(wake);
            }
        }
        Ok((next, events))
    }

    /// Canonical FNV-1a digest of the semantic state: tasks, queues,
    /// every object map and the pending-wakeup queue. Two states with
    /// equal digests are treated as revisits by the explorer, so the
    /// digest covers everything [`SpecState::apply`] reads or writes —
    /// and nothing else (the mutation switch is configuration, not
    /// state).
    pub fn canon_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.tasks.len() as u64);
        for (&tid, t) in &self.tasks {
            h.u64(u64::from(tid));
            h.u64(u64::from(t.base));
            h.u64(u64::from(t.cur));
            h.u64(t.state.tag());
            match &t.wait {
                None => h.u64(0),
                Some(obj) => {
                    h.u64(1);
                    h_wait(&mut h, obj);
                }
            }
            h_opt(&mut h, t.deadline);
            h.u64(t.held.len() as u64);
            for &m in &t.held {
                h.u64(u64::from(m));
            }
            h.u64(u64::from(t.suscnt));
            h.u64(u64::from(t.wupcnt));
        }
        h.u64(self.ready.len() as u64);
        for &(t, p) in &self.ready {
            h.u64(u64::from(t));
            h.u64(u64::from(p));
        }
        h_opt(&mut h, self.running.map(u64::from));
        h.u64(u64::from(self.dispatch_disabled));
        h.u64(self.sems.len() as u64);
        for (&id, s) in &self.sems {
            h.u64(u64::from(id));
            h.u64(u64::from(s.count));
            h.u64(u64::from(s.max));
            h_queue(&mut h, &s.q);
        }
        h.u64(self.flags.len() as u64);
        for (&id, f) in &self.flags {
            h.u64(u64::from(id));
            h.u64(u64::from(f.pattern));
            h_queue(&mut h, &f.q);
        }
        h.u64(self.mbxs.len() as u64);
        for (&id, m) in &self.mbxs {
            h.u64(u64::from(id));
            h.u64(m.msgs as u64);
            h_queue(&mut h, &m.q);
        }
        h.u64(self.mbfs.len() as u64);
        for (&id, m) in &self.mbfs {
            h.u64(u64::from(id));
            h.u64(m.bufsz as u64);
            h.u64(m.used as u64);
            h.u64(m.msgs.len() as u64);
            for &len in &m.msgs {
                h.u64(len as u64);
            }
            h_queue(&mut h, &m.send_q);
            h.u64(m.send_len.len() as u64);
            for (&t, &len) in &m.send_len {
                h.u64(u64::from(t));
                h.u64(len as u64);
            }
            h_queue(&mut h, &m.recv_q);
        }
        h.u64(self.mtxs.len() as u64);
        for (&id, m) in &self.mtxs {
            h.u64(u64::from(id));
            match m.policy {
                MtxPolicy::Fifo => h.u64(1),
                MtxPolicy::Pri => h.u64(2),
                MtxPolicy::Inherit => h.u64(3),
                MtxPolicy::Ceiling(c) => {
                    h.u64(4);
                    h.u64(u64::from(c));
                }
            }
            h_opt(&mut h, m.owner.map(u64::from));
            h_queue(&mut h, &m.q);
        }
        h.u64(self.mpfs.len() as u64);
        for (&id, p) in &self.mpfs {
            h.u64(u64::from(id));
            h.u64(p.total as u64);
            h.u64(p.free as u64);
            h_queue(&mut h, &p.q);
        }
        h.u64(self.mpls.len() as u64);
        for (&id, p) in &self.mpls {
            h.u64(u64::from(id));
            h.u64(p.free.len() as u64);
            for (&off, &len) in &p.free {
                h.u64(off as u64);
                h.u64(len as u64);
            }
            h.u64(p.allocs.len() as u64);
            for (&off, &len) in &p.allocs {
                h.u64(off as u64);
                h.u64(len as u64);
            }
            h_queue(&mut h, &p.q);
        }
        h.u64(self.cycs.len() as u64);
        for (&id, c) in &self.cycs {
            h.u64(u64::from(id));
            h.u64(c.period);
            h_opt(&mut h, c.armed);
        }
        h.u64(self.alms.len() as u64);
        for (&id, a) in &self.alms {
            h.u64(u64::from(id));
            h_opt(&mut h, a.armed);
        }
        h.u64(self.expected.len() as u64);
        for &(tid, obj, code) in &self.expected {
            h.u64(u64::from(tid));
            h_wait(&mut h, &obj);
            h_code(&mut h, code);
        }
        h.finish()
    }

    /// Independent well-formedness checks, computed with always-healthy
    /// logic regardless of any configured [`SpecMutation`] — so an
    /// exploration over a mutated spec flags the first state the
    /// mutation corrupts. Returns human-readable violation strings,
    /// empty for a well-formed state.
    pub fn invariant_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        // 1. Stored current priorities must equal the healthy
        //    ceiling + transitive-inheritance fixpoint.
        let healthy = self.healthy_priority_fixpoint();
        for (&tid, t) in &self.tasks {
            if t.cur != healthy[&tid] {
                out.push(format!(
                    "tsk{tid}: stored current priority {} but the ceiling/inheritance fixpoint is {}",
                    t.cur, healthy[&tid]
                ));
            }
        }
        // 2. No satisfiable semaphore head waiter may stay blocked.
        for (&id, s) in &self.sems {
            if let Some(front) = s.q.front() {
                let req = match self.tasks.get(&front).and_then(|t| t.wait) {
                    Some(WaitObj::Sem(_, req)) => req,
                    _ => 1,
                };
                if s.count >= req {
                    out.push(format!(
                        "sem{id}: head waiter tsk{front} requests {req} with count {} available but stays blocked",
                        s.count
                    ));
                }
            }
        }
        // 3. A fixed pool with free blocks must not keep waiters queued.
        for (&id, p) in &self.mpfs {
            if p.free > 0 {
                if let Some(front) = p.q.front() {
                    out.push(format!(
                        "mpf{id}: tsk{front} queued while {} blocks are free",
                        p.free
                    ));
                }
            }
        }
        // 4. Mutex ownership must be consistent with held lists.
        for (&id, m) in &self.mtxs {
            match m.owner {
                Some(o) => {
                    if !self.tasks.get(&o).is_some_and(|t| t.held.contains(&id)) {
                        out.push(format!(
                            "mtx{id}: owner tsk{o} does not hold it in the spec's held list"
                        ));
                    }
                }
                None => {
                    if let Some(front) = m.q.front() {
                        out.push(format!(
                            "mtx{id}: tsk{front} waits on a mutex with no owner"
                        ));
                    }
                }
            }
        }
        out
    }

    /// The healthy priority fixpoint (full transitive inheritance,
    /// never the mutated rule), without touching the state.
    fn healthy_priority_fixpoint(&self) -> BTreeMap<Tid, u8> {
        let tids: Vec<Tid> = self.tasks.keys().copied().collect();
        let mut cur: BTreeMap<Tid, u8> = tids.iter().map(|&t| (t, self.tasks[&t].base)).collect();
        loop {
            let mut changed = false;
            for &tid in &tids {
                let mut p = self.tasks[&tid].base;
                for mid in &self.tasks[&tid].held {
                    let Some(m) = self.mtxs.get(mid) else {
                        continue;
                    };
                    match m.policy {
                        MtxPolicy::Ceiling(c) => p = p.min(c),
                        MtxPolicy::Inherit => {
                            for w in m.q.iter_tids() {
                                p = p.min(cur[&w]);
                            }
                        }
                        _ => {}
                    }
                }
                if cur[&tid] != p {
                    cur.insert(tid, p);
                    changed = true;
                }
            }
            if !changed {
                return cur;
            }
        }
    }
}
