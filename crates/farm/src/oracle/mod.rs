//! The differential ITRON oracle: a pure, single-threaded executable
//! spec of the scheduling + synchronisation semantics, replayed in
//! lockstep against the kernel's observed decision stream.
//!
//! The kernel records an [`ObsEvent`] for every semantic operation and
//! every decision (see `rtk_core::obs`). [`check`] replays that history
//! through an independent reference model:
//!
//! * **Stimuli** (object creation, `tk_sig_sem`, `tk_set_flg`, a mutex
//!   unlock, a timeout expiry, a forced release, a termination, ...)
//!   update the model *and* compute the set of wakeups the µ-ITRON
//!   rules mandate, in order.
//! * **Decisions** (a dispatch, a wakeup, an immediate acquisition) are
//!   verified against the model: the dispatched task must be the head
//!   of the model's ready queue *at the model's computed current
//!   priority* (base priority relaxed through priority-ceiling and
//!   transitive priority-inheritance, computed to fixpoint — an
//!   implementation independent of the kernel's incremental
//!   propagation); a wakeup must be exactly the next mandated one.
//!
//! The first deviation is reported as a [`Divergence`] with the event
//! index, so `seed + index` replays the exact decision under a
//! debugger.
//!
//! # Scope
//!
//! The spec models the full surface a farm scenario can produce:
//!
//! * the default priority-preemptive scheduler, with `tk_rot_rdq`
//!   rotation;
//! * waits ending by satisfaction, timeout or forced release
//!   (`tk_rel_wai`), including the re-serve of waiters that become
//!   satisfiable when a queued waiter is removed;
//! * task lifecycle: `tk_ter_tsk` (release-all-held-mutexes with
//!   priority re-propagation), `tk_exd_tsk`, `tk_del_tsk`, restart;
//! * nested suspend/resume (`tk_sus_tsk`/`tk_rsm_tsk`/`tk_frsm_tsk`),
//!   including waits completing into SUSPENDED;
//! * dispatch-disable / CPU-lock windows (`tk_dis_dsp`/`tk_loc_cpu`):
//!   no dispatch, preemption or blocking may be observed inside one;
//! * task-attached sleep/wakeup (`tk_slp_tsk`/`tk_wup_tsk` with
//!   wakeup-request queueing);
//! * variable-size pools via a first-fit arena shadow mirroring the
//!   kernel's allocator (exact offsets, coalescing, waiter service in
//!   queue order);
//! * cyclic/alarm handler fire ticks (armed tick and period
//!   re-arming).
//!
//! Object deletion with live waiters ([`rtk_core::WakeCode::Deleted`]),
//! `tk_can_wup`, and custom schedulers remain outside the modeled
//! subset; streams containing them are rejected rather than validated
//! (see `rtk_core::obs`, "Checker scope").

use std::fmt;

use rtk_core::ObsEvent;

mod spec;

pub use spec::{Choice, SpecMutation, SpecState};

/// First observed deviation between the kernel and the reference model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the offending event in the observation stream.
    pub index: usize,
    /// The offending event, rendered.
    pub event: String,
    /// What the spec mandated instead.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event #{}: {} -- {}",
            self.index, self.event, self.detail
        )
    }
}

/// Result of replaying one observation stream through the spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleVerdict {
    /// Events replayed (all of them when no divergence was found).
    pub events_checked: u64,
    /// The first divergence, if any.
    pub divergence: Option<Divergence>,
}

/// Replays `events` through the sequential reference model and returns
/// the verdict.
pub fn check(events: &[ObsEvent]) -> OracleVerdict {
    let mut checker = Checker::new();
    for ev in events {
        checker.push(ev);
    }
    checker.verdict(true)
}

/// Incremental form of [`check`]: feed events one at a time (e.g. from
/// an `ObsStream` sink while the simulation runs, or from a trace file
/// during `--replay`) and ask for the verdict at the end.
///
/// Equivalent to [`check`] over the same stream: the first failing
/// event freezes the checker — `events_checked` stays at the
/// divergence index and later pushes are ignored, exactly as the
/// batch replay would have stopped there.
#[derive(Debug, Default)]
pub struct Checker {
    model: SpecState,
    checked: u64,
    divergence: Option<Divergence>,
}

impl Checker {
    /// A checker with a fresh reference model.
    pub fn new() -> Self {
        Checker::default()
    }

    /// A checker whose reference model carries a [`SpecMutation`] —
    /// the testing hook behind the mutation-sensitivity proofs: a
    /// mutated checker must stay green across random-seed replays
    /// while `--explore` convicts the same mutation.
    pub fn with_mutation(mutation: SpecMutation) -> Self {
        Checker {
            model: SpecState::with_mutation(mutation),
            ..Checker::default()
        }
    }

    /// Replays one event. No-op once a divergence has been recorded.
    pub fn push(&mut self, ev: &ObsEvent) {
        if self.divergence.is_some() {
            return;
        }
        if let Err(detail) = self.model.apply(ev) {
            self.divergence = Some(Divergence {
                index: self.checked as usize,
                event: format!("{ev:?}"),
                detail,
            });
        } else {
            self.checked += 1;
        }
    }

    /// `true` once a pushed event has deviated from the spec.
    pub fn diverged(&self) -> bool {
        self.divergence.is_some()
    }

    /// The verdict so far. `check_end` additionally applies the
    /// end-of-stream invariant (every mandated wakeup was observed);
    /// pass `false` for truncated streams — an aborted run legitimately
    /// stops mid-operation, so pending wakeups are not a divergence.
    pub fn verdict(&self, check_end: bool) -> OracleVerdict {
        if let Some(d) = &self.divergence {
            return OracleVerdict {
                events_checked: self.checked,
                divergence: Some(d.clone()),
            };
        }
        let divergence = if check_end {
            self.model.pending_wakeup().map(|(tid, obj, _)| Divergence {
                index: self.checked as usize,
                event: "<end of run>".into(),
                detail: format!(
                    "mandated wakeup of tsk{tid} from {} never observed",
                    obj.describe()
                ),
            })
        } else {
            None
        };
        OracleVerdict {
            events_checked: self.checked,
            divergence,
        }
    }
}
