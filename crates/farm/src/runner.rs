//! The campaign runner: N-thousand scenarios across worker threads.
//!
//! Kernel instances are fully independent, so a campaign is
//! embarrassingly parallel: each job expands one seed, builds one
//! kernel, runs it to the horizon and measures — entirely on one
//! worker. Load is balanced by work stealing: every worker owns a
//! deque seeded with a contiguous slice of the campaign, pops locally
//! from the front, and when dry steals the back half of the fullest
//! victim's deque. Scenario wall times vary by an order of magnitude
//! (horizon × task count × storm density), which is exactly the shape
//! static chunking handles poorly.
//!
//! Determinism: results are written into a slot per seed index, so
//! aggregation order — and therefore the campaign report — is
//! independent of which worker ran which job and in what order.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::build::{
    run_scenario_analyzed, run_scenario_checked_on, run_scenario_traced, ScenarioOutcome,
    TraceConfig,
};
use crate::scenario::{ScenarioSpec, Tuning};

/// Campaign parameters (the CLI surface).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// First seed of the campaign.
    pub base_seed: u64,
    /// Number of consecutive seeds to run.
    pub seeds: u64,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Generator knobs shared by every scenario.
    pub tuning: Tuning,
    /// Replay every scenario through the differential ITRON oracle; a
    /// divergence makes the scenario unhealthy.
    pub oracle: bool,
    /// Run only the seeds whose expanded scenario has this topology
    /// label (see `Topology::ALL_LABELS`) — one-command divergence
    /// repro for a single scenario family.
    pub topology: Option<String>,
    /// The sysc process runtime every scenario kernel runs on. Never
    /// changes the simulated-domain outcomes (hence the campaign
    /// digest); only host execution cost.
    pub runtime: sysc::Runtime,
    /// When set, every scenario's observation stream is captured into
    /// a binary `.rtkt` trace file in the given directory
    /// (`--trace-dir`) — replayable offline with `rtk-farm --replay`.
    /// Host-side instrumentation only: never changes outcomes or the
    /// campaign digest.
    pub trace: Option<TraceConfig>,
    /// Run the static scenario analyzer as a pre-pass on every seed
    /// and cross-validate its verdicts against the dynamic run
    /// (`--analyze`, see `docs/STATIC_ANALYSIS.md`). Host-side only:
    /// adds digest-excluded verification fields to outcomes and an
    /// analysis block to the report, never changing the campaign
    /// digest.
    pub analyze: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            base_seed: 1,
            seeds: 256,
            threads: 0,
            tuning: Tuning::default(),
            oracle: false,
            topology: None,
            runtime: sysc::Runtime::default(),
            trace: None,
            analyze: false,
        }
    }
}

impl CampaignConfig {
    /// The effective worker count: the configured value, or the number
    /// of available cores, never more than there are jobs.
    pub fn effective_threads(&self) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let t = if self.threads == 0 { hw } else { self.threads };
        t.clamp(1, self.seeds.max(1) as usize)
    }
}

/// One worker's job queue: seed *indexes* into the campaign.
struct WorkerQueue {
    jobs: Mutex<VecDeque<usize>>,
}

/// Pops a local job from the front of `own`, or steals the back half
/// of the fullest other queue. Returns `None` only after one full scan
/// observes every queue empty — a single failed steal retries, because
/// another thief may have drained the chosen victim between the length
/// scan and the lock (in-flight jobs never go back to a queue, so the
/// retry loop terminates).
fn next_job(own_idx: usize, queues: &[WorkerQueue]) -> Option<usize> {
    if let Some(j) = queues[own_idx].jobs.lock().unwrap().pop_front() {
        return Some(j);
    }
    loop {
        // Pick the victim with the most remaining work right now.
        let (victim, len) = (0..queues.len())
            .filter(|&v| v != own_idx)
            .map(|v| (v, queues[v].jobs.lock().unwrap().len()))
            .max_by_key(|&(_, len)| len)?;
        if len == 0 {
            return None; // every other queue was empty during the scan
        }
        let stolen: Vec<usize> = {
            let mut q = queues[victim].jobs.lock().unwrap();
            let keep = q.len() / 2;
            q.split_off(keep).into()
        };
        if stolen.is_empty() {
            continue; // raced with another thief; rescan
        }
        let mut own = queues[own_idx].jobs.lock().unwrap();
        own.extend(stolen);
        if let Some(j) = own.pop_front() {
            return Some(j);
        }
    }
}

/// Runs the whole campaign; returns the outcomes in seed order. With a
/// topology filter, only the seeds whose (purely seed-derived)
/// scenario carries that label run — the rest of the pipeline is
/// unchanged, so filtered reports stay deterministic too.
pub fn run_campaign(cfg: &CampaignConfig) -> Vec<ScenarioOutcome> {
    // Seed offsets selected for execution (expansion is pure and
    // cheap, so the filter pre-scans).
    let selected: Vec<u64> = match &cfg.topology {
        None => (0..cfg.seeds).collect(),
        Some(label) => (0..cfg.seeds)
            .filter(|&i| {
                ScenarioSpec::generate(cfg.base_seed + i, &cfg.tuning)
                    .topology
                    .label()
                    == label
            })
            .collect(),
    };
    let n = selected.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = cfg.effective_threads().min(n);

    // Scenario kernels lease their T-THREAD contexts from a global
    // pool — OS threads (threaded runtime) or heap stacks (coroutine
    // runtime); across a campaign the same contexts serve thousands of
    // scenarios. Pre-warm one wave's worth (a quick scenario runs
    // roughly 4–10 thread processes: tasks, boot, timer, storm) so the
    // first scenarios don't pay creation latency either.
    match cfg.runtime.resolve() {
        sysc::Runtime::Threaded => sysc::pool::prewarm(workers.saturating_mul(8)),
        sysc::Runtime::Coro => {
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            sysc::runtime::prewarm_stacks(workers.saturating_mul(8));
        }
    }

    // Static pre-split into contiguous slices, then dynamic stealing.
    let queues: Vec<WorkerQueue> = (0..workers)
        .map(|w| {
            let lo = n * w / workers;
            let hi = n * (w + 1) / workers;
            WorkerQueue {
                jobs: Mutex::new((lo..hi).collect()),
            }
        })
        .collect();

    let slots: Vec<Mutex<Option<ScenarioOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let selected = &selected;
            scope.spawn(move || {
                while let Some(idx) = next_job(w, queues) {
                    let seed = cfg.base_seed + selected[idx];
                    let spec = ScenarioSpec::generate(seed, &cfg.tuning);
                    let outcome = if cfg.analyze {
                        run_scenario_analyzed(&spec, cfg.oracle, cfg.runtime, cfg.trace.as_ref())
                    } else {
                        match &cfg.trace {
                            Some(tc) => run_scenario_traced(&spec, cfg.oracle, cfg.runtime, tc),
                            None => run_scenario_checked_on(&spec, cfg.oracle, cfg.runtime),
                        }
                    };
                    *slots[idx].lock().unwrap() = Some(outcome);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every job slot filled exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(seeds: u64, threads: usize) -> CampaignConfig {
        CampaignConfig {
            base_seed: 100,
            seeds,
            threads,
            tuning: Tuning {
                quick: true,
                faults: true,
            },
            oracle: false,
            topology: None,
            runtime: sysc::Runtime::default(),
            trace: None,
            analyze: false,
        }
    }

    #[test]
    fn campaign_returns_seed_ordered_outcomes() {
        let outcomes = run_campaign(&quick_cfg(6, 3));
        assert_eq!(outcomes.len(), 6);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.seed, 100 + i as u64);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let seq: Vec<u64> = run_campaign(&quick_cfg(8, 1))
            .iter()
            .map(|o| o.digest())
            .collect();
        let par: Vec<u64> = run_campaign(&quick_cfg(8, 4))
            .iter()
            .map(|o| o.digest())
            .collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_seeds_is_empty() {
        assert!(run_campaign(&quick_cfg(0, 2)).is_empty());
    }

    #[test]
    fn topology_filter_selects_matching_seeds_only() {
        let mut cfg = quick_cfg(64, 2);
        cfg.topology = Some("sem_chain".into());
        let outcomes = run_campaign(&cfg);
        assert!(!outcomes.is_empty(), "64 seeds must contain a sem_chain");
        for o in &outcomes {
            let spec = ScenarioSpec::generate(o.seed, &cfg.tuning);
            assert_eq!(spec.topology.label(), "sem_chain", "seed {}", o.seed);
        }
        // Unfiltered superset contains exactly the same outcomes for
        // those seeds.
        let full = run_campaign(&quick_cfg(64, 2));
        for o in &outcomes {
            let twin = full
                .iter()
                .find(|f| f.seed == o.seed)
                .expect("seed in superset");
            assert_eq!(twin.digest(), o.digest());
        }
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(quick_cfg(4, 16).effective_threads(), 4);
        assert_eq!(quick_cfg(4, 1).effective_threads(), 1);
        assert!(quick_cfg(100, 0).effective_threads() >= 1);
    }
}
