//! Campaign aggregation and the `BENCH_farm.json` report.
//!
//! The report is the perf-trajectory artifact CI uploads on every run,
//! so it is **fully deterministic**: only simulated-domain quantities
//! (integer microseconds, picojoules, counts) appear, aggregation runs
//! in seed order, and the JSON writer emits fields in a fixed order
//! with integer-only values. A fixed seed set therefore produces a
//! byte-identical file regardless of host, thread count or run.
//! Wall-clock throughput (`wall_clock_ms`, `scenarios_per_sec`) is
//! host-dependent by nature: the CLI records it via
//! [`CampaignReport::to_json_timed`], but it never enters
//! `campaign_digest`, and the plain [`CampaignReport::to_json`] the
//! determinism tests compare omits it entirely.

use std::fmt::Write as _;

use rtk_analysis::json_escape;
use rtk_analysis::oracle_report::{divergences_json, DivergenceRecord};
use rtk_analysis::percentile::Summary;
use rtk_analysis::static_verify::{AnalysisOptions, Verdict};

use crate::build::ScenarioOutcome;
use crate::runner::CampaignConfig;
use crate::scenario::{Fnv, ScenarioSpec};
use crate::verify::{analyze_spec, verify_outcome, AnalysisRecord};

/// Aggregated view of a finished campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The campaign parameters (for report provenance).
    pub cfg: CampaignConfig,
    /// Per-scenario outcomes in seed order.
    pub outcomes: Vec<ScenarioOutcome>,
}

/// The distribution summaries of a campaign.
#[derive(Debug, Clone, Copy, Default)]
pub struct Aggregate {
    /// Job response latencies pooled over every scenario (µs).
    pub latency_us: Summary,
    /// Per-scenario dispatch (context switch) counts.
    pub dispatches: Summary,
    /// Per-scenario preemption counts.
    pub preemptions: Summary,
    /// Per-scenario total modeled energy (nJ).
    pub energy_nj: Summary,
    /// Per-scenario deadline-miss counts.
    pub misses: Summary,
    /// Total releases over the campaign.
    pub releases: u64,
    /// Total completions over the campaign.
    pub completions: u64,
    /// Total deadline misses over the campaign.
    pub deadline_misses: u64,
    /// Tasks that starved (never completed despite ≥4 releases),
    /// summed over the campaign.
    pub starved_tasks: u64,
    /// Scenarios that panicked.
    pub panicked: u64,
    /// Scenarios that stalled (deadlock indicator).
    pub stalled: u64,
    /// Scenarios that hit the delta-cycle livelock guard.
    pub livelocked: u64,
    /// Scenarios whose engine run starved (event queue went dead
    /// before the horizon — impossible with a healthy periodic tick).
    pub engine_starved: u64,
    /// Kernel decisions replayed through the oracle over the whole
    /// campaign (0 when the oracle was off).
    pub oracle_events: u64,
    /// Scenarios whose decision stream diverged from the spec.
    pub diverged: u64,
    /// Observation events dropped by stream sinks over the campaign
    /// (bounded trace capture, I/O failure). Host-side accounting:
    /// reported in the timed JSON only, never in the digest.
    pub obs_dropped: u64,
}

impl CampaignReport {
    /// Builds the report from seed-ordered outcomes.
    pub fn new(cfg: CampaignConfig, outcomes: Vec<ScenarioOutcome>) -> Self {
        CampaignReport { cfg, outcomes }
    }

    /// Computes the distribution summaries (one pass, seed order).
    pub fn aggregate(&self) -> Aggregate {
        let mut agg = Aggregate::default();
        let mut latencies = Vec::new();
        let mut dispatches = Vec::new();
        let mut preemptions = Vec::new();
        let mut energies = Vec::new();
        let mut misses = Vec::new();
        for o in &self.outcomes {
            latencies.extend_from_slice(&o.latencies_us);
            dispatches.push(o.stats.dispatches);
            preemptions.push(o.stats.preemptions);
            energies.push(o.stats.total_energy().as_pj() / 1000);
            misses.push(o.deadline_misses);
            agg.releases += o.releases;
            agg.completions += o.completions;
            agg.deadline_misses += o.deadline_misses;
            agg.starved_tasks += o.starved_tasks;
            agg.panicked += u64::from(o.panicked.is_some());
            agg.stalled += u64::from(o.stalled);
            agg.livelocked += u64::from(o.engine_outcome == "delta_limit");
            agg.engine_starved += u64::from(o.engine_outcome == "starved");
            agg.oracle_events += o.oracle_events;
            agg.diverged += u64::from(o.divergence.is_some());
            agg.obs_dropped += o.obs_dropped;
        }
        agg.latency_us = Summary::of(&mut latencies);
        agg.dispatches = Summary::of(&mut dispatches);
        agg.preemptions = Summary::of(&mut preemptions);
        agg.energy_nj = Summary::of(&mut energies);
        agg.misses = Summary::of(&mut misses);
        agg
    }

    /// Campaign digest: FNV-1a over every scenario digest in seed
    /// order. Equal digests ⇒ the campaigns measured identical
    /// simulated behaviour.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for o in &self.outcomes {
            h.u64(o.digest());
        }
        h.finish()
    }

    /// `true` when every scenario is healthy (no panic, stall or
    /// livelock) — the CI gate.
    pub fn all_healthy(&self) -> bool {
        self.outcomes.iter().all(|o| o.healthy())
    }

    /// Seeds of unhealthy scenarios with a short reason each.
    pub fn failures(&self) -> Vec<(u64, String)> {
        self.outcomes
            .iter()
            .filter(|o| !o.healthy())
            .map(|o| {
                let why = if let Some(msg) = &o.panicked {
                    format!("panicked: {msg}")
                } else if let Some((_, d)) = &o.divergence {
                    format!("oracle divergence: {d}")
                } else if o.stalled {
                    "stalled (task stopped completing jobs)".to_string()
                } else if o.engine_outcome == "starved" {
                    "engine starved (event queue dead before the horizon)".to_string()
                } else {
                    "delta-cycle livelock".to_string()
                };
                (o.seed, why)
            })
            .collect()
    }

    /// Static-analysis records, one per scenario in seed order; empty
    /// unless the campaign ran with `--analyze`. Recomputed from the
    /// seeds (the analyzer is a pure function of the spec) and
    /// cross-validated against the stored outcomes.
    pub fn analysis_records(&self) -> Vec<AnalysisRecord> {
        if !self.cfg.analyze {
            return Vec::new();
        }
        self.outcomes
            .iter()
            .map(|o| {
                let spec = ScenarioSpec::generate(o.seed, &self.cfg.tuning);
                let analysis = analyze_spec(&spec, &AnalysisOptions::default());
                verify_outcome(&spec, &analysis, o)
            })
            .collect()
    }

    /// Static/dynamic contradictions over the campaign: `(seed,
    /// account)` pairs. Any entry fails an `--analyze` campaign.
    pub fn contradictions(&self) -> Vec<(u64, String)> {
        self.analysis_records()
            .iter()
            .flat_map(|r| r.contradictions.iter().map(|c| (r.seed, c.clone())))
            .collect()
    }

    /// Divergence records for the oracle section of the report.
    pub fn divergences(&self) -> Vec<DivergenceRecord> {
        self.outcomes
            .iter()
            .filter_map(|o| {
                o.divergence
                    .as_ref()
                    .map(|(index, detail)| DivergenceRecord {
                        seed: o.seed,
                        event_index: *index,
                        detail: detail.clone(),
                    })
            })
            .collect()
    }

    /// Renders the `BENCH_farm.json` document (deterministic; see the
    /// module docs).
    pub fn to_json(&self) -> String {
        self.render_json(None)
    }

    /// Like [`CampaignReport::to_json`] but with wall-clock throughput
    /// fields (`wall_clock_ms`, `scenarios_per_sec`) for perf-trajectory
    /// tracking. These are host-dependent by nature, so they are
    /// **excluded from `campaign_digest`** (which hashes only
    /// simulated-domain outcomes) and omitted from the plain
    /// [`CampaignReport::to_json`] the determinism tests compare.
    pub fn to_json_timed(&self, wall_ms: u64) -> String {
        self.render_json(Some(wall_ms))
    }

    fn render_json(&self, wall_ms: Option<u64>) -> String {
        let agg = self.aggregate();
        let mut j = String::with_capacity(4096);
        j.push_str("{\n");
        let _ = writeln!(j, "  \"schema\": \"rtk-farm-bench-v1\",");
        let _ = writeln!(j, "  \"base_seed\": {},", self.cfg.base_seed);
        let _ = writeln!(j, "  \"seeds\": {},", self.cfg.seeds);
        let _ = writeln!(j, "  \"quick\": {},", self.cfg.tuning.quick);
        let _ = writeln!(j, "  \"faults\": {},", self.cfg.tuning.faults);
        let _ = writeln!(j, "  \"oracle\": {},", self.cfg.oracle);
        let _ = writeln!(j, "  \"campaign_digest\": \"{:016x}\",", self.digest());
        if let Some(ms) = wall_ms {
            // Host-execution metadata: informational, digest-excluded
            // (the process runtime affects wall clock but never the
            // simulated domain, and the plain rendering the determinism
            // tests compare across runtimes omits it).
            let per_sec = self.outcomes.len() as u64 * 1000 / ms.max(1);
            let _ = writeln!(j, "  \"runtime\": \"{}\",", self.cfg.runtime.resolve());
            let _ = writeln!(j, "  \"wall_clock_ms\": {ms},");
            let _ = writeln!(j, "  \"scenarios_per_sec\": {per_sec},");
            // Sink drop accounting is host-side too (whether a trace
            // was captured, and with what cap, is a CLI choice).
            let _ = writeln!(j, "  \"obs_dropped\": {},", agg.obs_dropped);
        }
        let _ = writeln!(j, "  \"scenarios\": {},", self.outcomes.len());
        let _ = writeln!(j, "  \"releases\": {},", agg.releases);
        let _ = writeln!(j, "  \"completions\": {},", agg.completions);
        let _ = writeln!(j, "  \"deadline_misses\": {},", agg.deadline_misses);
        let _ = writeln!(j, "  \"starved_tasks\": {},", agg.starved_tasks);
        let _ = writeln!(j, "  \"panicked\": {},", agg.panicked);
        let _ = writeln!(j, "  \"stalled\": {},", agg.stalled);
        let _ = writeln!(j, "  \"livelocked\": {},", agg.livelocked);
        let _ = writeln!(j, "  \"engine_starved\": {},", agg.engine_starved);
        let _ = writeln!(j, "  \"oracle_events\": {},", agg.oracle_events);
        let _ = writeln!(
            j,
            "  \"oracle_divergences\": {},",
            divergences_json(&self.divergences())
        );
        write_summary(&mut j, "latency_us", &agg.latency_us);
        write_summary(&mut j, "dispatches", &agg.dispatches);
        write_summary(&mut j, "preemptions", &agg.preemptions);
        write_summary(&mut j, "energy_nj", &agg.energy_nj);
        write_summary(&mut j, "deadline_misses_per_scenario", &agg.misses);
        // The static-analysis block (`--analyze` campaigns only).
        // Digest-excluded by construction: `campaign_digest` hashes the
        // per-scenario outcome digests, which ignore every analysis
        // field — a campaign with analysis on reports the same digest
        // as one without.
        if self.cfg.analyze {
            let records = self.analysis_records();
            let count = |f: &dyn Fn(&AnalysisRecord) -> Verdict, v: Verdict| {
                records.iter().filter(|r| f(r) == v).count()
            };
            let dl = &|r: &AnalysisRecord| r.deadlock;
            let sc = &|r: &AnalysisRecord| r.schedulable;
            j.push_str("  \"analysis\": {\n");
            let _ = writeln!(
                j,
                "    \"deadlock\": {{\"certified\": {}, \"refuted\": {}, \"unknown\": {}}},",
                count(dl, Verdict::Certified),
                count(dl, Verdict::Refuted),
                count(dl, Verdict::Unknown)
            );
            let _ = writeln!(
                j,
                "    \"schedulable\": {{\"certified\": {}, \"refuted\": {}, \"unknown\": {}}},",
                count(sc, Verdict::Certified),
                count(sc, Verdict::Refuted),
                count(sc, Verdict::Unknown)
            );
            j.push_str("    \"contradictions\": [");
            for (i, (seed, why)) in self.contradictions().iter().enumerate() {
                if i > 0 {
                    j.push_str(", ");
                }
                let _ = write!(j, "{{\"seed\": {seed}, \"why\": \"{}\"}}", json_escape(why));
            }
            j.push_str("],\n");
            j.push_str("    \"verdicts\": [\n");
            for (i, r) in records.iter().enumerate() {
                let _ = write!(
                    j,
                    "      {{\"seed\": {}, \"deadlock\": \"{}\", \"schedulable\": \"{}\", \"util_ppm\": {}}}",
                    r.seed, r.deadlock, r.schedulable, r.utilization_ppm
                );
                j.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
            }
            j.push_str("    ]\n  },\n");
        }
        let failures = self.failures();
        j.push_str("  \"failures\": [");
        for (i, (seed, why)) in failures.iter().enumerate() {
            if i > 0 {
                j.push_str(", ");
            }
            let _ = write!(j, "{{\"seed\": {seed}, \"why\": \"{}\"}}", json_escape(why));
        }
        j.push_str("]\n}\n");
        j
    }
}

/// Renders the deterministic `rtk-farm-explore-v1` JSON document for
/// one exploration run (see `docs/EXPLORATION.md`). Same discipline as
/// the bench report: fixed field order, integer/quoted-hex values
/// only, no host quantities — byte-identical across thread counts,
/// runtimes and hosts.
pub(crate) fn render_explore_json(r: &crate::explore::ExploreReport) -> String {
    let mut j = String::with_capacity(2048);
    j.push_str("{\n");
    let _ = writeln!(j, "  \"schema\": \"rtk-farm-explore-v1\",");
    let _ = writeln!(j, "  \"family\": \"{}\",", r.family);
    let _ = writeln!(j, "  \"por\": {},", r.por);
    let _ = writeln!(j, "  \"adversarial\": {},", r.adversarial);
    let _ = writeln!(j, "  \"faults\": {},", r.faults);
    let _ = writeln!(j, "  \"depth_limit\": {},", r.depth_limit);
    let _ = writeln!(j, "  \"max_states\": {},", r.max_states);
    let _ = writeln!(j, "  \"horizon\": {},", r.horizon);
    let _ = writeln!(j, "  \"states\": {},", r.states);
    let _ = writeln!(j, "  \"transitions\": {},", r.transitions);
    let _ = writeln!(j, "  \"deduped\": {},", r.deduped);
    let _ = writeln!(j, "  \"collapsed\": {},", r.collapsed);
    let _ = writeln!(j, "  \"max_depth\": {},", r.max_depth);
    let _ = writeln!(j, "  \"truncated\": {},", r.truncated);
    let _ = writeln!(j, "  \"preemptions\": {},", r.preemptions);
    let _ = writeln!(j, "  \"deadlocks\": {},", r.deadlocks);
    let _ = writeln!(j, "  \"invariant_violations\": {},", r.invariant_violations);
    let _ = writeln!(j, "  \"spec_errors\": {},", r.spec_errors);
    let _ = writeln!(j, "  \"state_hash\": \"{:016x}\",", r.state_hash);
    let _ = writeln!(j, "  \"certificate\": \"{}\",", r.certificate);
    match &r.certificate_contradiction {
        Some(why) => {
            let _ = writeln!(
                j,
                "  \"certificate_contradiction\": \"{}\",",
                json_escape(why)
            );
        }
        None => {
            let _ = writeln!(j, "  \"certificate_contradiction\": null,");
        }
    }
    let _ = writeln!(
        j,
        "  \"cross_execution\": \"{}\",",
        json_escape(&r.cross_execution)
    );
    j.push_str("  \"violations\": [");
    for (i, v) in r.violations.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        let _ = write!(
            j,
            "{{\"kind\": \"{}\", \"tick\": {}, \"state\": \"{:016x}\", \"trace\": \"{}\", \"why\": \"{}\"}}",
            v.kind,
            v.tick,
            v.state_hash,
            v.trace,
            json_escape(&v.detail)
        );
    }
    j.push_str("]\n}\n");
    j
}

/// Writes one `Summary` as a nested JSON object (integer fields only).
/// Always followed by another field (the `failures` array closes the
/// document), hence the unconditional trailing comma.
fn write_summary(j: &mut String, name: &str, s: &Summary) {
    let _ = writeln!(
        j,
        "  \"{name}\": {{\"count\": {}, \"min\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}},",
        s.count,
        s.min,
        s.mean(),
        s.p50,
        s.p90,
        s.p99,
        s.max
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_campaign;
    use crate::scenario::Tuning;

    fn small_campaign(threads: usize) -> CampaignReport {
        let cfg = CampaignConfig {
            base_seed: 7,
            seeds: 5,
            threads,
            tuning: Tuning {
                quick: true,
                faults: true,
            },
            oracle: true,
            topology: None,
            runtime: sysc::Runtime::default(),
            trace: None,
            analyze: false,
        };
        let outcomes = run_campaign(&cfg);
        CampaignReport::new(cfg, outcomes)
    }

    #[test]
    fn analyze_block_appears_without_touching_the_digest() {
        let mk = |analyze: bool| {
            let cfg = CampaignConfig {
                base_seed: 7,
                seeds: 6,
                threads: 2,
                tuning: Tuning {
                    quick: true,
                    faults: true,
                },
                oracle: false,
                topology: None,
                runtime: sysc::Runtime::default(),
                trace: None,
                analyze,
            };
            let outcomes = run_campaign(&cfg);
            CampaignReport::new(cfg, outcomes)
        };
        let plain = mk(false);
        let analyzed = mk(true);
        assert_eq!(plain.digest(), analyzed.digest());
        assert!(!plain.to_json().contains("\"analysis\""));
        let j = analyzed.to_json();
        assert!(j.contains("\"analysis\""));
        assert!(j.contains("\"verdicts\""));
        assert!(j.contains("\"contradictions\": []"), "{j}");
        assert!(analyzed.contradictions().is_empty());
        assert_eq!(analyzed.analysis_records().len(), 6);
    }

    #[test]
    fn json_is_byte_identical_across_thread_counts() {
        let a = small_campaign(1).to_json();
        let b = small_campaign(3).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn json_has_expected_fields() {
        let j = small_campaign(2).to_json();
        for field in [
            "\"schema\": \"rtk-farm-bench-v1\"",
            "\"campaign_digest\"",
            "\"latency_us\"",
            "\"dispatches\"",
            "\"energy_nj\"",
            "\"failures\"",
        ] {
            assert!(j.contains(field), "missing {field} in:\n{j}");
        }
        // Exactly one top-level JSON object, no trailing comma issues:
        // crude but effective given the fixed writer.
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("]\n}\n"));
    }

    #[test]
    fn empty_campaign_report_is_valid_and_healthy() {
        // `--seeds 0`: no scenarios, but the report must still be a
        // well-formed document with all-zero aggregates (the CLI path
        // exits 0 on it).
        let cfg = CampaignConfig {
            seeds: 0,
            ..CampaignConfig::default()
        };
        let r = CampaignReport::new(cfg, Vec::new());
        assert!(r.all_healthy());
        assert!(r.failures().is_empty());
        let agg = r.aggregate();
        assert_eq!(agg.completions, 0);
        assert_eq!(agg.latency_us.count, 0);
        let j = r.to_json();
        assert!(j.contains("\"scenarios\": 0"));
        assert!(j.contains("\"oracle_divergences\": []"));
        assert!(j.starts_with("{\n") && j.ends_with("]\n}\n"));
    }

    #[test]
    fn timed_json_adds_wall_fields_without_touching_the_digest() {
        let r = small_campaign(2);
        let timed = r.to_json_timed(2500);
        assert!(timed.contains("\"wall_clock_ms\": 2500"));
        assert!(timed.contains("\"scenarios_per_sec\": 2")); // 5 * 1000 / 2500
        let expected_runtime = format!("\"runtime\": \"{}\"", sysc::Runtime::default().resolve());
        assert!(timed.contains(&expected_runtime), "{timed}");
        let plain = r.to_json();
        assert!(!plain.contains("wall_clock_ms"));
        // The runtime is host metadata: timed rendering only, so plain
        // reports stay byte-comparable across runtimes.
        assert!(!plain.contains("\"runtime\""));
        // Identical digest line in both renderings.
        let digest_line = |j: &str| {
            j.lines()
                .find(|l| l.contains("campaign_digest"))
                .unwrap()
                .to_string()
        };
        assert_eq!(digest_line(&timed), digest_line(&plain));
    }

    #[test]
    fn aggregate_counts_add_up() {
        let r = small_campaign(2);
        let agg = r.aggregate();
        assert_eq!(
            agg.latency_us.count,
            r.outcomes
                .iter()
                .map(|o| o.latencies_us.len() as u64)
                .sum::<u64>()
        );
        assert_eq!(agg.dispatches.count, r.outcomes.len() as u64);
        assert!(agg.completions > 0);
    }
}
