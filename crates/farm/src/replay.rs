//! Offline trace replay: re-run the differential oracle from `.rtkt`
//! trace files alone (`rtk-farm --replay`), without re-executing a
//! single kernel.
//!
//! A trace captured with `--trace-dir` records every kernel decision
//! (see `docs/TRACE_FORMAT.md`); replaying it through the same
//! incremental [`Checker`] the live campaign uses reproduces the exact
//! oracle verdict — including the first-divergence event index — so a
//! divergence can be triaged (or bisected against a changed spec) from
//! the artifact alone.

use std::path::{Path, PathBuf};

use rtk_analysis::json_escape;
use rtk_analysis::oracle_report::{divergences_json, DivergenceRecord};
use rtk_analysis::static_verify::{AnalysisOptions, Conformance, Verdict};
use rtk_analysis::trace_codec::{read_trace, CodecError, DecodedTrace, TraceHeader};
use rtk_core::{StampedEvent, StreamClose};

use crate::model::static_model;
use crate::oracle::{Checker, OracleVerdict};
use crate::scenario::{ScenarioSpec, Tuning};
use crate::verify::analyze_spec;

/// One replayed trace file: provenance, the decoded stream, and the
/// oracle's verdict over it.
#[derive(Debug)]
pub struct ReplayedTrace {
    /// Where the trace was read from.
    pub path: PathBuf,
    /// The trace header (seed, topology, runtime, versions).
    pub header: TraceHeader,
    /// The decoded event stream (kept for exporters).
    pub events: Vec<StampedEvent>,
    /// `true` when the file carried a trailer (the writer closed the
    /// stream; a missing trailer means it died mid-write).
    pub complete: bool,
    /// `true` when the trailer says the run ended cleanly (not by
    /// panic) — only then do end-of-stream oracle invariants apply.
    pub clean: bool,
    /// Events the writer dropped (bounded capture).
    pub dropped: u64,
    /// The oracle verdict, matching what the live run would report.
    pub verdict: OracleVerdict,
}

/// Replays one decoded trace through the oracle.
///
/// The end-of-stream invariant (every mandated wakeup observed) is
/// applied only to complete, clean, drop-free traces: an aborted run
/// legitimately stops mid-operation, and a capped or truncated capture
/// is missing the tail — exactly as the live campaign ignores the
/// verdict of panicked runs.
pub fn replay_decoded(path: PathBuf, decoded: DecodedTrace) -> ReplayedTrace {
    let complete = decoded.complete();
    let (clean, dropped) = match decoded.trailer {
        Some(t) => (t.close == StreamClose::Clean, t.dropped),
        None => (false, 0),
    };
    let mut checker = Checker::new();
    for se in &decoded.events {
        checker.push(&se.ev);
    }
    let check_end = complete && clean && dropped == 0 && decoded.skipped == 0;
    ReplayedTrace {
        path,
        header: decoded.header,
        events: decoded.events,
        complete,
        clean,
        dropped,
        verdict: checker.verdict(check_end),
    }
}

/// Replays one `.rtkt` file.
pub fn replay_trace(path: &Path) -> Result<ReplayedTrace, CodecError> {
    Ok(replay_decoded(path.to_path_buf(), read_trace(path)?))
}

/// Replays a trace file, or every `*.rtkt` file in a directory. The
/// result is sorted by recorded seed, so directory iteration order
/// (host-dependent) never shows through.
pub fn replay_path(path: &Path) -> Result<Vec<ReplayedTrace>, CodecError> {
    let mut traces = Vec::new();
    if path.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(CodecError::Io)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "rtkt"))
            .collect();
        files.sort();
        for file in files {
            traces.push(replay_trace(&file)?);
        }
    } else {
        traces.push(replay_trace(path)?);
    }
    traces.sort_by_key(|t| t.header.seed);
    Ok(traces)
}

/// Static verdicts recomputed from a trace file alone (`rtk-farm
/// --replay DIR --analyze`): the header's seed + tuning regenerate the
/// scenario spec, the analyzer re-derives its verdicts from the
/// declarative model, and the decoded stream is checked against the
/// declared lock model. Timing cross-checks (response bounds, deadline
/// misses) need live measurements that traces do not carry, so they
/// remain live-campaign-only — see `docs/STATIC_ANALYSIS.md`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayedAnalysis {
    /// The seed recorded in the trace header.
    pub seed: u64,
    /// Static deadlock verdict.
    pub deadlock: Verdict,
    /// Static schedulability verdict.
    pub schedulable: Verdict,
    /// RM utilization of the modelled task set, parts-per-million.
    pub utilization_ppm: u64,
    /// One-line deterministic account of the analysis.
    pub summary: String,
    /// Lock-model conformance violations committed by the decoded
    /// stream (event-driven, so valid for truncated captures too).
    pub conformance_violations: u64,
    /// Rendered accounts of the first conformance violations.
    pub conformance_details: Vec<String>,
}

impl ReplayedAnalysis {
    /// `true` when the replayed stream contradicts the static model.
    pub fn consistent(&self) -> bool {
        self.conformance_violations == 0
    }
}

/// Recomputes the static analysis for one replayed trace.
///
/// Fails when the header carries no tuning record (traces captured
/// before the analyzer existed): the tuning changes the generator's
/// draw sequence, so without it the spec cannot be regenerated. Also
/// fails when the regenerated topology does not match the recorded
/// one — a header/generator version skew that would silently analyze
/// the wrong scenario.
pub fn replay_analysis(t: &ReplayedTrace) -> Result<ReplayedAnalysis, String> {
    let Some(tuning) = t.header.tuning else {
        return Err(format!(
            "{}: header carries no tuning record; re-capture with a \
             current rtk-farm --trace-dir to analyze offline",
            t.path.display()
        ));
    };
    let spec = ScenarioSpec::generate(
        t.header.seed,
        &Tuning {
            quick: tuning.quick,
            faults: tuning.faults,
        },
    );
    if spec.topology.label() != t.header.topology {
        return Err(format!(
            "{}: regenerated topology {:?} does not match recorded {:?} \
             (generator/header version skew)",
            t.path.display(),
            spec.topology.label(),
            t.header.topology
        ));
    }
    let analysis = analyze_spec(&spec, &AnalysisOptions::default());
    let mut conformance = Conformance::from_model(&static_model(&spec));
    for se in &t.events {
        conformance.push(&se.ev);
    }
    Ok(ReplayedAnalysis {
        seed: t.header.seed,
        deadlock: analysis.deadlock,
        schedulable: analysis.schedulable,
        utilization_ppm: analysis.utilization_ppm,
        summary: analysis.summary(),
        conformance_violations: conformance.violation_count(),
        conformance_details: conformance.violations().to_vec(),
    })
}

/// Renders the replay report (`rtk-farm-replay-v1`). The oracle fields
/// mirror the live campaign report's (`oracle_events`, the
/// `oracle_divergences` array), so a replay can be diffed against the
/// live run's verdicts field-for-field.
pub fn replay_report_json(traces: &[ReplayedTrace]) -> String {
    replay_report_json_analyzed(traces, None)
}

/// [`replay_report_json`] plus an `analysis` block (mirroring the live
/// campaign report's) when `--analyze` recomputed static verdicts.
pub fn replay_report_json_analyzed(
    traces: &[ReplayedTrace],
    analyses: Option<&[ReplayedAnalysis]>,
) -> String {
    use std::fmt::Write as _;
    let mut j = String::with_capacity(1024);
    let divergences: Vec<DivergenceRecord> = traces
        .iter()
        .filter_map(|t| {
            t.verdict.divergence.as_ref().map(|d| DivergenceRecord {
                seed: t.header.seed,
                event_index: d.index as u64,
                detail: d.to_string(),
            })
        })
        .collect();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"schema\": \"rtk-farm-replay-v1\",");
    let _ = writeln!(j, "  \"traces\": {},", traces.len());
    let _ = writeln!(
        j,
        "  \"incomplete\": {},",
        traces.iter().filter(|t| !t.complete).count()
    );
    let _ = writeln!(
        j,
        "  \"aborted\": {},",
        traces.iter().filter(|t| t.complete && !t.clean).count()
    );
    let _ = writeln!(
        j,
        "  \"obs_dropped\": {},",
        traces.iter().map(|t| t.dropped).sum::<u64>()
    );
    let _ = writeln!(
        j,
        "  \"oracle_events\": {},",
        traces.iter().map(|t| t.verdict.events_checked).sum::<u64>()
    );
    let _ = writeln!(
        j,
        "  \"oracle_divergences\": {},",
        divergences_json(&divergences)
    );
    if let Some(analyses) = analyses {
        j.push_str("  \"analysis\": {\n");
        let count = |f: fn(&ReplayedAnalysis) -> Verdict, v: Verdict| {
            analyses.iter().filter(|a| f(a) == v).count()
        };
        let _ = writeln!(
            j,
            "    \"deadlock\": {{\"certified\": {}, \"refuted\": {}, \"unknown\": {}}},",
            count(|a| a.deadlock, Verdict::Certified),
            count(|a| a.deadlock, Verdict::Refuted),
            count(|a| a.deadlock, Verdict::Unknown),
        );
        let _ = writeln!(
            j,
            "    \"schedulable\": {{\"certified\": {}, \"refuted\": {}, \"unknown\": {}}},",
            count(|a| a.schedulable, Verdict::Certified),
            count(|a| a.schedulable, Verdict::Refuted),
            count(|a| a.schedulable, Verdict::Unknown),
        );
        let _ = writeln!(
            j,
            "    \"conformance_violations\": {},",
            analyses
                .iter()
                .map(|a| a.conformance_violations)
                .sum::<u64>()
        );
        j.push_str("    \"verdicts\": [");
        for (i, a) in analyses.iter().enumerate() {
            if i > 0 {
                j.push_str(", ");
            }
            let _ = write!(
                j,
                "{{\"seed\": {}, \"deadlock\": \"{}\", \"schedulable\": \"{}\", \
                 \"util_ppm\": {}, \"conformance_violations\": {}}}",
                a.seed, a.deadlock, a.schedulable, a.utilization_ppm, a.conformance_violations,
            );
        }
        j.push_str("]\n  },\n");
    }
    j.push_str("  \"seeds\": [");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        let _ = write!(
            j,
            "{{\"seed\": {}, \"topology\": \"{}\", \"events\": {}, \"diverged\": {}}}",
            t.header.seed,
            json_escape(&t.header.topology),
            t.verdict.events_checked,
            t.verdict.divergence.is_some(),
        );
    }
    j.push_str("]\n}\n");
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{run_scenario_checked_on, run_scenario_traced, TraceConfig};
    use crate::scenario::{ScenarioSpec, Tuning};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rtk_replay_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn replay_matches_live_verdict_for_clean_seeds() {
        let dir = tmp_dir("clean");
        let tuning = Tuning {
            quick: true,
            faults: true,
        };
        let tc = TraceConfig {
            dir: dir.clone(),
            cap: 0,
            tuning: None,
        };
        let mut live = Vec::new();
        for seed in 300..308 {
            let spec = ScenarioSpec::generate(seed, &tuning);
            live.push(run_scenario_traced(
                &spec,
                true,
                sysc::Runtime::default(),
                &tc,
            ));
        }
        let replayed = replay_path(&dir).unwrap();
        assert_eq!(replayed.len(), live.len());
        for (r, l) in replayed.iter().zip(&live) {
            assert_eq!(r.header.seed, l.seed);
            assert!(r.complete && r.clean, "seed {}", l.seed);
            assert_eq!(r.verdict.events_checked, l.oracle_events, "seed {}", l.seed);
            assert_eq!(
                r.verdict.divergence.as_ref().map(|d| d.index as u64),
                l.divergence.as_ref().map(|(i, _)| *i),
                "seed {}",
                l.seed
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_run_has_same_outcome_as_untraced() {
        let dir = tmp_dir("digest");
        let tuning = Tuning {
            quick: true,
            faults: true,
        };
        let spec = ScenarioSpec::generate(42, &tuning);
        let plain = run_scenario_checked_on(&spec, true, sysc::Runtime::default());
        let traced = run_scenario_traced(
            &spec,
            true,
            sysc::Runtime::default(),
            &TraceConfig {
                dir: dir.clone(),
                cap: 0,
                tuning: None,
            },
        );
        assert_eq!(plain.digest(), traced.digest());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_analysis_matches_live_verdicts() {
        use rtk_analysis::trace_codec::TraceTuning;
        let dir = tmp_dir("analyze");
        let tuning = Tuning {
            quick: true,
            faults: true,
        };
        let tc = TraceConfig {
            dir: dir.clone(),
            cap: 0,
            tuning: Some(TraceTuning {
                quick: true,
                faults: true,
            }),
        };
        for seed in 400..408 {
            let spec = ScenarioSpec::generate(seed, &tuning);
            run_scenario_traced(&spec, false, sysc::Runtime::default(), &tc);
        }
        let traces = replay_path(&dir).unwrap();
        assert_eq!(traces.len(), 8);
        let mut recs = Vec::new();
        for t in &traces {
            let rec = replay_analysis(t).unwrap();
            // Offline verdicts are byte-identical to what the live
            // campaign's analyzer derives for the same seed.
            let spec = ScenarioSpec::generate(t.header.seed, &tuning);
            let live = analyze_spec(&spec, &AnalysisOptions::default());
            assert_eq!(rec.deadlock, live.deadlock, "seed {}", t.header.seed);
            assert_eq!(rec.schedulable, live.schedulable, "seed {}", t.header.seed);
            assert_eq!(rec.summary, live.summary(), "seed {}", t.header.seed);
            // A healthy capture conforms to its declared lock model.
            assert!(
                rec.consistent(),
                "seed {}: {:?}",
                t.header.seed,
                rec.conformance_details
            );
            recs.push(rec);
        }
        let j = replay_report_json_analyzed(&traces, Some(&recs));
        assert!(j.contains("\"analysis\": {"));
        assert!(j.contains("\"conformance_violations\": 0"));

        // A header without a tuning record cannot be re-analyzed: the
        // tuning changes the generator's draw sequence.
        let mut stripped = traces.into_iter().next().unwrap();
        stripped.header.tuning = None;
        let err = replay_analysis(&stripped).unwrap_err();
        assert!(err.contains("tuning"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_report_shape() {
        let dir = tmp_dir("report");
        let tuning = Tuning {
            quick: true,
            faults: false,
        };
        let tc = TraceConfig {
            dir: dir.clone(),
            cap: 0,
            tuning: None,
        };
        let spec = ScenarioSpec::generate(5, &tuning);
        run_scenario_traced(&spec, true, sysc::Runtime::default(), &tc);
        let traces = replay_path(&dir).unwrap();
        let j = replay_report_json(&traces);
        assert!(j.contains("\"schema\": \"rtk-farm-replay-v1\""));
        assert!(j.contains("\"traces\": 1"));
        assert!(j.contains("\"incomplete\": 0"));
        assert!(j.contains("\"oracle_divergences\": []"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
