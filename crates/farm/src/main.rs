//! `rtk-farm` — run a seeded scenario campaign and write
//! `BENCH_farm.json`.
//!
//! ```text
//! rtk-farm [--seeds N] [--base-seed S] [--threads T] [--quick]
//!          [--no-faults] [--out PATH]
//! ```
//!
//! Exit code 0 when every scenario is healthy; 1 when any scenario
//! panicked, stalled or livelocked (the CI smoke gate); 2 on usage
//! errors.

use std::process::ExitCode;
use std::time::Instant;

use rtk_farm::{run_campaign, CampaignConfig, CampaignReport};

const USAGE: &str = "usage: rtk-farm [options]

options:
  --seeds N       number of consecutive seeds to run   (default 256)
  --base-seed S   first seed                           (default 1)
  --threads T     worker threads, 0 = all cores        (default 0)
  --quick         short horizon (120 ms) for smoke campaigns
  --no-faults     disable fault-injection draws
  --out PATH      report path                          (default BENCH_farm.json)
  --help          this text";

fn parse_args() -> Result<(CampaignConfig, String), String> {
    let mut cfg = CampaignConfig::default();
    let mut out = "BENCH_farm.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--seeds" => {
                cfg.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--base-seed" => {
                cfg.base_seed = value("--base-seed")?
                    .parse()
                    .map_err(|e| format!("--base-seed: {e}"))?
            }
            "--threads" => {
                cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--quick" => cfg.tuning.quick = true,
            "--no-faults" => cfg.tuning.faults = false,
            "--out" => out = value("--out")?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    Ok((cfg, out))
}

fn main() -> ExitCode {
    let (cfg, out_path) = match parse_args() {
        Ok(v) => v,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("rtk-farm: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let workers = cfg.effective_threads();
    eprintln!(
        "rtk-farm: {} scenarios (seeds {}..{}), {} worker thread(s), {} horizon, faults {}",
        cfg.seeds,
        cfg.base_seed,
        cfg.base_seed + cfg.seeds.saturating_sub(1),
        workers,
        if cfg.tuning.quick { "quick" } else { "full" },
        if cfg.tuning.faults { "on" } else { "off" },
    );

    let t0 = Instant::now();
    let outcomes = run_campaign(&cfg);
    let wall = t0.elapsed();
    let report = CampaignReport::new(cfg, outcomes);
    let agg = report.aggregate();

    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("rtk-farm: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }

    // Wall-clock numbers go to stderr only: the JSON report must stay
    // byte-identical across runs and thread counts.
    let n = report.outcomes.len() as f64;
    eprintln!(
        "rtk-farm: done in {:.2}s ({:.1} scenarios/s) -> {out_path}",
        wall.as_secs_f64(),
        n / wall.as_secs_f64().max(1e-9),
    );
    eprintln!(
        "rtk-farm: digest {:016x} | jobs {} | misses {} | latency_us p50/p90/p99 = {}/{}/{}",
        report.digest(),
        agg.completions,
        agg.deadline_misses,
        agg.latency_us.p50,
        agg.latency_us.p90,
        agg.latency_us.p99,
    );

    if report.all_healthy() {
        ExitCode::SUCCESS
    } else {
        for (seed, why) in report.failures() {
            eprintln!("rtk-farm: seed {seed} UNHEALTHY: {why}");
        }
        ExitCode::FAILURE
    }
}
