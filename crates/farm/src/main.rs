//! `rtk-farm` — run a seeded scenario campaign and write
//! `BENCH_farm.json`.
//!
//! ```text
//! rtk-farm [--seeds N] [--base-seed S] [--threads T] [--quick]
//!          [--no-faults] [--oracle] [--topology NAME]
//!          [--runtime threaded|coro] [--out PATH]
//! ```
//!
//! Exit code 0 when every scenario is healthy; 1 when any scenario
//! panicked, stalled, livelocked or (with `--oracle`) diverged from
//! the ITRON reference model (the CI gates); 2 on usage errors.

use std::process::ExitCode;
use std::time::Instant;

use rtk_farm::{run_campaign, CampaignConfig, CampaignReport, Topology};

const USAGE: &str = "usage: rtk-farm [options]

options:
  --seeds N       number of consecutive seeds to run   (default 256)
  --base-seed S   first seed                           (default 1)
  --threads T     worker threads, at least 1           (default: all cores)
  --quick         short horizon (120 ms) for smoke campaigns
  --no-faults     disable fault-injection draws
  --oracle        replay every scenario through the differential
                  ITRON oracle; any divergence fails the campaign
  --topology NAME run only the seeds expanding to this scenario
                  family (one-command divergence repro), one of:
                  independent sem_chain mbx_pipeline flag_barrier
                  mtx_inherit mtx_ceiling mbf_pipeline mpf_pool
                  lifecycle_churn disp_window cpu_lock_window
                  mpl_pressure alm_cyc_storm
  --runtime R     sysc process runtime, threaded or coro (default coro;
                  coro falls back to threaded on unsupported targets).
                  Never changes results, only host execution cost
  --out PATH      report path                          (default BENCH_farm.json)
  --help          this text";

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<(CampaignConfig, String), String> {
    let mut cfg = CampaignConfig::default();
    let mut out = "BENCH_farm.json".to_string();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--seeds" => {
                cfg.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--base-seed" => {
                cfg.base_seed = value("--base-seed")?
                    .parse()
                    .map_err(|e| format!("--base-seed: {e}"))?
            }
            "--threads" => {
                cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if cfg.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--quick" => cfg.tuning.quick = true,
            "--no-faults" => cfg.tuning.faults = false,
            "--oracle" => cfg.oracle = true,
            "--topology" => {
                let name = value("--topology")?;
                if !Topology::ALL_LABELS.contains(&name.as_str()) {
                    return Err(format!(
                        "--topology: unknown family {name:?} (known: {})",
                        Topology::ALL_LABELS.join(" ")
                    ));
                }
                cfg.topology = Some(name);
            }
            "--runtime" => {
                cfg.runtime = value("--runtime")?
                    .parse()
                    .map_err(|e| format!("--runtime: {e}"))?
            }
            "--out" => out = value("--out")?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    Ok((cfg, out))
}

fn main() -> ExitCode {
    let (cfg, out_path) = match parse_args(std::env::args().skip(1)) {
        Ok(v) => v,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("rtk-farm: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let workers = cfg.effective_threads();
    let seed_range = if cfg.seeds == 0 {
        "none".to_string()
    } else {
        format!("{}..{}", cfg.base_seed, cfg.base_seed + cfg.seeds - 1)
    };
    eprintln!(
        "rtk-farm: {} scenarios (seeds {}), {} worker thread(s), {} runtime, {} horizon, faults {}, oracle {}{}",
        cfg.seeds,
        seed_range,
        workers,
        cfg.runtime.resolve(),
        if cfg.tuning.quick { "quick" } else { "full" },
        if cfg.tuning.faults { "on" } else { "off" },
        if cfg.oracle { "on" } else { "off" },
        match &cfg.topology {
            Some(t) => format!(", topology {t}"),
            None => String::new(),
        },
    );

    let t0 = Instant::now();
    let outcomes = run_campaign(&cfg);
    let wall = t0.elapsed();
    let report = CampaignReport::new(cfg, outcomes);
    let agg = report.aggregate();

    // The CLI report carries wall-clock throughput (digest-excluded);
    // everything hashed by `campaign_digest` stays simulated-domain.
    let wall_ms = wall.as_millis() as u64;
    if let Err(e) = std::fs::write(&out_path, report.to_json_timed(wall_ms)) {
        eprintln!("rtk-farm: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }

    let n = report.outcomes.len() as f64;
    eprintln!(
        "rtk-farm: done in {:.2}s ({:.1} scenarios/s) -> {out_path}",
        wall.as_secs_f64(),
        n / wall.as_secs_f64().max(1e-9),
    );
    eprintln!(
        "rtk-farm: digest {:016x} | jobs {} | misses {} | latency_us p50/p90/p99 = {}/{}/{}",
        report.digest(),
        agg.completions,
        agg.deadline_misses,
        agg.latency_us.p50,
        agg.latency_us.p90,
        agg.latency_us.p99,
    );

    if report.all_healthy() {
        ExitCode::SUCCESS
    } else {
        for (seed, why) in report.failures() {
            eprintln!("rtk-farm: seed {seed} UNHEALTHY: {why}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    fn parse(args: &[&str]) -> Result<(rtk_farm::CampaignConfig, String), String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let (cfg, out) = parse(&[]).unwrap();
        assert_eq!(cfg.seeds, 256);
        assert_eq!(cfg.threads, 0); // auto: all cores
        assert!(!cfg.oracle);
        assert_eq!(cfg.runtime, sysc::Runtime::Coro);
        assert_eq!(out, "BENCH_farm.json");
    }

    #[test]
    fn runtime_flag_selects_the_backend() {
        let (cfg, _) = parse(&["--runtime", "threaded"]).unwrap();
        assert_eq!(cfg.runtime, sysc::Runtime::Threaded);
        let (cfg, _) = parse(&["--runtime", "coro"]).unwrap();
        assert_eq!(cfg.runtime, sysc::Runtime::Coro);
    }

    #[test]
    fn unknown_runtime_is_a_usage_error() {
        // The CLI maps usage errors to exit code 2 in `main`.
        let err = parse(&["--runtime", "green-threads"]).unwrap_err();
        assert!(err.contains("--runtime"), "{err}");
        assert!(err.contains("green-threads"), "{err}");
        let err = parse(&["--runtime"]).unwrap_err();
        assert!(err.contains("expects a value"), "{err}");
    }

    #[test]
    fn oracle_flag_and_values() {
        let (cfg, out) = parse(&[
            "--oracle",
            "--seeds",
            "12",
            "--base-seed",
            "7",
            "--threads",
            "3",
            "--out",
            "x.json",
        ])
        .unwrap();
        assert!(cfg.oracle);
        assert_eq!((cfg.seeds, cfg.base_seed, cfg.threads), (12, 7, 3));
        assert_eq!(out, "x.json");
    }

    #[test]
    fn zero_seeds_is_accepted() {
        // An empty campaign is valid: the CLI writes an empty-but-valid
        // report and exits 0 (pinned by `report::empty_campaign_report`).
        let (cfg, _) = parse(&["--seeds", "0"]).unwrap();
        assert_eq!(cfg.seeds, 0);
    }

    #[test]
    fn zero_threads_is_a_usage_error() {
        let err = parse(&["--threads", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn unknown_option_is_a_usage_error() {
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("unknown"));
    }
}
