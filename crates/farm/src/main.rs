//! `rtk-farm` — run a seeded scenario campaign and write
//! `BENCH_farm.json`, or replay captured `.rtkt` traces.
//!
//! ```text
//! rtk-farm [--seeds N] [--base-seed S] [--threads T] [--quick]
//!          [--no-faults] [--oracle] [--topology NAME]
//!          [--runtime threaded|coro] [--trace-dir DIR] [--trace-cap N]
//!          [--out PATH]
//! rtk-farm --replay PATH [--export-vcd DIR] [--export-chrome DIR]
//!          [--out PATH]
//! rtk-farm --explore FAMILY [--depth N] [--max-states N] [--no-por]
//!          [--adversarial] [--no-faults] [--explore-dir DIR]
//!          [--export-vcd DIR] [--export-chrome DIR] [--out PATH]
//! ```
//!
//! Exit code 0 when every scenario (or replayed trace) is healthy and
//! every explored schedule is violation-free; 1 when any scenario
//! panicked, stalled, livelocked or (with `--oracle` or under
//! `--replay`) diverged from the ITRON reference model, or when
//! `--explore` found a deadlock, invariant break or certificate
//! contradiction (the CI gates); 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rtk_analysis::trace_codec::TraceTuning;
use rtk_farm::{
    replay_analysis, replay_path, replay_report_json_analyzed, run_campaign, run_exploration,
    write_counterexamples, CampaignConfig, CampaignReport, ExploreConfig, Family, ReplayedAnalysis,
    Topology, TraceConfig,
};

const USAGE: &str = "usage: rtk-farm [options]

campaign options:
  --seeds N       number of consecutive seeds to run   (default 256)
  --base-seed S   first seed                           (default 1)
  --threads T     worker threads, at least 1           (default: all cores)
  --quick         short horizon (120 ms) for smoke campaigns
  --no-faults     disable fault-injection draws
  --oracle        replay every scenario through the differential
                  ITRON oracle; any divergence fails the campaign
  --analyze       run the static scenario analyzer as a pre-pass and
                  cross-validate verdicts against the dynamic run;
                  any static/dynamic contradiction fails the campaign
                  (see docs/STATIC_ANALYSIS.md)
  --topology NAME run only the seeds expanding to this scenario
                  family (one-command divergence repro), one of:
                  independent sem_chain mbx_pipeline flag_barrier
                  mtx_inherit mtx_ceiling mbf_pipeline mpf_pool
                  lifecycle_churn disp_window cpu_lock_window
                  mpl_pressure alm_cyc_storm
  --runtime R     sysc process runtime, threaded or coro (default coro;
                  coro falls back to threaded on unsupported targets).
                  Never changes results, only host execution cost
  --trace-dir DIR capture one binary .rtkt trace per scenario into DIR
                  (created if missing; see docs/TRACE_FORMAT.md)
  --trace-cap N   cap each trace at N events (excess counted as
                  dropped; default 0 = unlimited)
  --out PATH      report path              (default BENCH_farm.json)

replay options:
  --replay PATH   replay a .rtkt trace file, or every *.rtkt in a
                  directory, through the oracle — no kernel execution;
                  verdicts (incl. divergence event indexes) match the
                  live run's. Report goes to --out
                  (default REPLAY_farm.json)
  --export-vcd DIR     also write a per-task state waveform
                       seed-<seed>.vcd per trace into DIR
  --export-chrome DIR  also write a chrome://tracing JSON
                       seed-<seed>.trace.json per trace into DIR
  --analyze       recompute static verdicts from the trace headers and
                  check each decoded stream against its declared lock
                  model; a conformance violation fails the replay
                  (timing cross-checks stay live-campaign-only)

explore options (bounded model checking, see docs/EXPLORATION.md):
  --explore FAMILY walk every schedule of a hand-built topology through
                  the executable ITRON spec — timeout ties, IRQ jitter
                  slots, same-tick release orders and budgeted faults
                  all branch; any deadlock state, spec-invariant break
                  or rtk-verify certificate contradiction fails the
                  run (exit 1). FAMILY is one of:
                  mtx irq chain deadlock
                  Report goes to --out (default EXPLORE_farm.json).
                  Excludes every campaign/replay option except
                  --threads, --runtime, --quick and --no-faults
  --depth N       DFS depth bound, at least 1        (default 2000)
  --max-states N  distinct-state bound, at least 1   (default 200000)
  --no-por        disable partial-order reduction (explore every
                  order of commuting same-tick choices)
  --adversarial   keep only the preemption-maximizing choices at every
                  branch point (a pruning of the exhaustive tree;
                  implies no POR)
  --no-faults     with --explore: no fault branch points
  --explore-dir DIR  write each violation's replayable counterexample
                  as explore-<family>-<n>.rtkt into DIR
  --export-vcd/--export-chrome  with --explore: render each
                  counterexample like a replayed trace
  --help          this text";

#[derive(Debug)]
struct Cli {
    cfg: CampaignConfig,
    out: Option<String>,
    replay: Option<PathBuf>,
    export_vcd: Option<PathBuf>,
    export_chrome: Option<PathBuf>,
    explore: Option<ExploreConfig>,
    explore_dir: Option<PathBuf>,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        cfg: CampaignConfig::default(),
        out: None,
        replay: None,
        export_vcd: None,
        export_chrome: None,
        explore: None,
        explore_dir: None,
    };
    let mut trace_dir: Option<PathBuf> = None;
    let mut trace_cap: Option<u64> = None;
    // --explore knobs, collected order-independently and validated
    // after the loop (so `--depth 10 --explore mtx` parses too).
    let mut explore_family: Option<String> = None;
    let mut depth: Option<usize> = None;
    let mut max_states: Option<usize> = None;
    let mut no_por = false;
    let mut adversarial = false;
    // Campaign-only options seen, for the --explore exclusion check.
    let mut campaign_only: Vec<&'static str> = Vec::new();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--seeds" => {
                campaign_only.push("--seeds");
                cli.cfg.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--base-seed" => {
                campaign_only.push("--base-seed");
                cli.cfg.base_seed = value("--base-seed")?
                    .parse()
                    .map_err(|e| format!("--base-seed: {e}"))?
            }
            "--threads" => {
                cli.cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if cli.cfg.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--quick" => cli.cfg.tuning.quick = true,
            "--no-faults" => cli.cfg.tuning.faults = false,
            "--oracle" => {
                campaign_only.push("--oracle");
                cli.cfg.oracle = true
            }
            "--analyze" => {
                campaign_only.push("--analyze");
                cli.cfg.analyze = true
            }
            "--topology" => {
                campaign_only.push("--topology");
                let name = value("--topology")?;
                if !Topology::ALL_LABELS.contains(&name.as_str()) {
                    return Err(format!(
                        "--topology: unknown family {name:?} (known: {})",
                        Topology::ALL_LABELS.join(" ")
                    ));
                }
                cli.cfg.topology = Some(name);
            }
            "--runtime" => {
                cli.cfg.runtime = value("--runtime")?
                    .parse()
                    .map_err(|e| format!("--runtime: {e}"))?
            }
            "--trace-dir" => {
                campaign_only.push("--trace-dir");
                trace_dir = Some(PathBuf::from(value("--trace-dir")?))
            }
            "--trace-cap" => {
                campaign_only.push("--trace-cap");
                trace_cap = Some(
                    value("--trace-cap")?
                        .parse()
                        .map_err(|e| format!("--trace-cap: {e}"))?,
                )
            }
            "--replay" => cli.replay = Some(PathBuf::from(value("--replay")?)),
            "--export-vcd" => cli.export_vcd = Some(PathBuf::from(value("--export-vcd")?)),
            "--export-chrome" => cli.export_chrome = Some(PathBuf::from(value("--export-chrome")?)),
            "--out" => cli.out = Some(value("--out")?),
            "--explore" => explore_family = Some(value("--explore")?),
            "--depth" => {
                let n: usize = value("--depth")?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?;
                if n == 0 {
                    return Err("--depth must be at least 1".into());
                }
                depth = Some(n);
            }
            "--max-states" => {
                let n: usize = value("--max-states")?
                    .parse()
                    .map_err(|e| format!("--max-states: {e}"))?;
                if n == 0 {
                    return Err("--max-states must be at least 1".into());
                }
                max_states = Some(n);
            }
            "--no-por" => no_por = true,
            "--adversarial" => adversarial = true,
            "--explore-dir" => cli.explore_dir = Some(PathBuf::from(value("--explore-dir")?)),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    if trace_cap.is_some() && trace_dir.is_none() {
        return Err("--trace-cap requires --trace-dir".into());
    }
    if let Some(dir) = trace_dir {
        if cli.replay.is_some() {
            return Err(
                "--trace-dir cannot be combined with --replay (capture happens in the live run)"
                    .into(),
            );
        }
        // Record the generator tuning in every trace header, so
        // `--replay --analyze` can regenerate the exact spec offline.
        cli.cfg.trace = Some(TraceConfig {
            dir,
            cap: trace_cap.unwrap_or(0),
            tuning: Some(TraceTuning {
                quick: cli.cfg.tuning.quick,
                faults: cli.cfg.tuning.faults,
            }),
        });
    }
    match explore_family {
        None => {
            let knobs: Vec<&str> = [
                depth.map(|_| "--depth"),
                max_states.map(|_| "--max-states"),
                no_por.then_some("--no-por"),
                adversarial.then_some("--adversarial"),
                cli.explore_dir.as_ref().map(|_| "--explore-dir"),
            ]
            .into_iter()
            .flatten()
            .collect();
            if !knobs.is_empty() {
                return Err(format!("{} require(s) --explore", knobs.join("/")));
            }
        }
        Some(name) => {
            let family = Family::parse(&name).ok_or_else(|| {
                format!(
                    "--explore: unknown family {name:?} (known: {})",
                    Family::ALL_LABELS.join(" ")
                )
            })?;
            if cli.replay.is_some() {
                return Err("--explore cannot be combined with --replay".into());
            }
            if !campaign_only.is_empty() {
                return Err(format!(
                    "--explore cannot be combined with campaign option(s) {}",
                    campaign_only.join("/")
                ));
            }
            let defaults = ExploreConfig::default();
            cli.explore = Some(ExploreConfig {
                family,
                depth: depth.unwrap_or(defaults.depth),
                max_states: max_states.unwrap_or(defaults.max_states),
                por: !no_por,
                adversarial,
                faults: cli.cfg.tuning.faults,
                ..defaults
            });
        }
    }
    if cli.replay.is_none()
        && cli.explore.is_none()
        && (cli.export_vcd.is_some() || cli.export_chrome.is_some())
    {
        return Err("--export-vcd/--export-chrome require --replay or --explore".into());
    }
    Ok(cli)
}

/// The `--replay` mode: oracle verdicts (and optional exports) from
/// trace files alone.
type ExportFn = fn(&[rtk_core::StampedEvent], u32) -> String;

fn run_replay(cli: &Cli, path: &std::path::Path) -> ExitCode {
    let traces = match replay_path(path) {
        Ok(traces) => traces,
        Err(e) => {
            eprintln!("rtk-farm: replay of {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    for dir in [&cli.export_vcd, &cli.export_chrome].into_iter().flatten() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("rtk-farm: cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    for t in &traces {
        let exports: [(&Option<PathBuf>, &str, ExportFn); 2] = [
            (&cli.export_vcd, "vcd", rtk_analysis::obs_to_vcd),
            (
                &cli.export_chrome,
                "trace.json",
                rtk_analysis::obs_to_chrome_trace,
            ),
        ];
        for (dir, ext, render) in exports {
            if let Some(dir) = dir {
                let file = dir.join(format!("seed-{:010}.{ext}", t.header.seed));
                if let Err(e) = std::fs::write(&file, render(&t.events, t.header.tick_us)) {
                    eprintln!("rtk-farm: cannot write {}: {e}", file.display());
                    return ExitCode::from(2);
                }
            }
        }
    }
    let analyses: Option<Vec<ReplayedAnalysis>> = if cli.cfg.analyze {
        let mut recs = Vec::with_capacity(traces.len());
        for t in &traces {
            match replay_analysis(t) {
                Ok(r) => recs.push(r),
                Err(e) => {
                    eprintln!("rtk-farm: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        Some(recs)
    } else {
        None
    };
    let out = cli.out.clone().unwrap_or_else(|| "REPLAY_farm.json".into());
    if let Err(e) = std::fs::write(
        &out,
        replay_report_json_analyzed(&traces, analyses.as_deref()),
    ) {
        eprintln!("rtk-farm: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    let diverged: Vec<_> = traces
        .iter()
        .filter_map(|t| t.verdict.divergence.as_ref().map(|d| (t.header.seed, d)))
        .collect();
    let incomplete = traces.iter().filter(|t| !t.complete).count();
    eprintln!(
        "rtk-farm: replayed {} trace(s), {} oracle event(s), {} divergence(s), {} incomplete -> {out}",
        traces.len(),
        traces.iter().map(|t| t.verdict.events_checked).sum::<u64>(),
        diverged.len(),
        incomplete,
    );
    for (seed, d) in &diverged {
        eprintln!("rtk-farm: seed {seed} DIVERGED: {d}");
    }
    let mut nonconformant = 0usize;
    if let Some(recs) = &analyses {
        let certified = |v| recs.iter().filter(|r| r.deadlock == v).count();
        eprintln!(
            "rtk-farm: static analysis over {} header(s): deadlock certified {}, \
             schedulable certified {}",
            recs.len(),
            certified(rtk_analysis::static_verify::Verdict::Certified),
            recs.iter()
                .filter(|r| r.schedulable == rtk_analysis::static_verify::Verdict::Certified)
                .count(),
        );
        for r in recs.iter().filter(|r| !r.consistent()) {
            nonconformant += 1;
            eprintln!(
                "rtk-farm: seed {} NONCONFORMANT: {} lock-model violation(s), first: {}",
                r.seed,
                r.conformance_violations,
                r.conformance_details.first().map_or("", String::as_str),
            );
        }
    }
    if diverged.is_empty() && nonconformant == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `--explore` mode: exhaust the family's schedule tree, distill
/// violations into replayable counterexamples, write the report.
fn run_explore(cli: &Cli, cfg: &ExploreConfig) -> ExitCode {
    eprintln!(
        "rtk-farm: exploring family {} (depth {}, max-states {}, por {}, \
         adversarial {}, faults {})",
        cfg.family, cfg.depth, cfg.max_states, cfg.por, cfg.adversarial, cfg.faults,
    );
    let outcome = run_exploration(cfg, cli.cfg.runtime);
    let mut written: Vec<PathBuf> = Vec::new();
    if let Some(dir) = &cli.explore_dir {
        match write_counterexamples(&outcome, dir) {
            Ok(paths) => written = paths,
            Err(e) => {
                eprintln!(
                    "rtk-farm: cannot write counterexamples to {}: {e}",
                    dir.display()
                );
                return ExitCode::from(2);
            }
        }
    }
    if cli.export_vcd.is_some() || cli.export_chrome.is_some() {
        for dir in [&cli.export_vcd, &cli.export_chrome].into_iter().flatten() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("rtk-farm: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        let tick_us = rtk_analysis::trace_codec::DEFAULT_TICK_US;
        for ce in &outcome.counterexamples {
            let stem = ce.name.trim_end_matches(".rtkt");
            let exports: [(&Option<PathBuf>, &str, ExportFn); 2] = [
                (&cli.export_vcd, "vcd", rtk_analysis::obs_to_vcd),
                (
                    &cli.export_chrome,
                    "trace.json",
                    rtk_analysis::obs_to_chrome_trace,
                ),
            ];
            for (dir, ext, render) in exports {
                if let Some(dir) = dir {
                    let file = dir.join(format!("{stem}.{ext}"));
                    if let Err(e) = std::fs::write(&file, render(&ce.events, tick_us)) {
                        eprintln!("rtk-farm: cannot write {}: {e}", file.display());
                        return ExitCode::from(2);
                    }
                }
            }
        }
    }
    let out = cli
        .out
        .clone()
        .unwrap_or_else(|| "EXPLORE_farm.json".into());
    if let Err(e) = std::fs::write(&out, outcome.report.to_json()) {
        eprintln!("rtk-farm: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    let r = &outcome.report;
    eprintln!(
        "rtk-farm: explored {} state(s), {} transition(s), {} deduped, {} collapsed, \
         max depth {}, hash {:016x} -> {out}",
        r.states, r.transitions, r.deduped, r.collapsed, r.max_depth, r.state_hash,
    );
    if r.truncated {
        eprintln!("rtk-farm: WARNING: exploration truncated by --depth/--max-states bounds");
    }
    if !written.is_empty() {
        eprintln!("rtk-farm: wrote {} counterexample(s)", written.len());
    }
    for v in &r.violations {
        eprintln!(
            "rtk-farm: {} at tick {} (state {:016x}): {}",
            v.kind, v.tick, v.state_hash, v.detail
        );
    }
    if let Some(msg) = &r.certificate_contradiction {
        eprintln!("rtk-farm: CERTIFICATE CONTRADICTION: {msg}");
    }
    if r.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(v) => v,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("rtk-farm: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &cli.replay {
        return run_replay(&cli, path);
    }
    if let Some(ecfg) = cli.explore.clone() {
        return run_explore(&cli, &ecfg);
    }
    let cfg = cli.cfg;
    let out_path = cli.out.unwrap_or_else(|| "BENCH_farm.json".into());

    if let Some(tc) = &cfg.trace {
        if let Err(e) = std::fs::create_dir_all(&tc.dir) {
            eprintln!("rtk-farm: cannot create {}: {e}", tc.dir.display());
            return ExitCode::from(2);
        }
    }

    let workers = cfg.effective_threads();
    let seed_range = if cfg.seeds == 0 {
        "none".to_string()
    } else {
        format!("{}..{}", cfg.base_seed, cfg.base_seed + cfg.seeds - 1)
    };
    eprintln!(
        "rtk-farm: {} scenarios (seeds {}), {} worker thread(s), {} runtime, {} horizon, faults {}, oracle {}{}{}{}",
        cfg.seeds,
        seed_range,
        workers,
        cfg.runtime.resolve(),
        if cfg.tuning.quick { "quick" } else { "full" },
        if cfg.tuning.faults { "on" } else { "off" },
        if cfg.oracle { "on" } else { "off" },
        if cfg.analyze { ", analyze on" } else { "" },
        match &cfg.topology {
            Some(t) => format!(", topology {t}"),
            None => String::new(),
        },
        match &cfg.trace {
            Some(tc) => format!(", tracing to {}", tc.dir.display()),
            None => String::new(),
        },
    );

    let t0 = Instant::now();
    let outcomes = run_campaign(&cfg);
    let wall = t0.elapsed();
    let report = CampaignReport::new(cfg, outcomes);
    let agg = report.aggregate();

    // The CLI report carries wall-clock throughput (digest-excluded);
    // everything hashed by `campaign_digest` stays simulated-domain.
    let wall_ms = wall.as_millis() as u64;
    if let Err(e) = std::fs::write(&out_path, report.to_json_timed(wall_ms)) {
        eprintln!("rtk-farm: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }

    let n = report.outcomes.len() as f64;
    eprintln!(
        "rtk-farm: done in {:.2}s ({:.1} scenarios/s) -> {out_path}",
        wall.as_secs_f64(),
        n / wall.as_secs_f64().max(1e-9),
    );
    eprintln!(
        "rtk-farm: digest {:016x} | jobs {} | misses {} | latency_us p50/p90/p99 = {}/{}/{}",
        report.digest(),
        agg.completions,
        agg.deadline_misses,
        agg.latency_us.p50,
        agg.latency_us.p90,
        agg.latency_us.p99,
    );
    if agg.obs_dropped > 0 {
        eprintln!(
            "rtk-farm: {} observation event(s) dropped by trace capture (see --trace-cap)",
            agg.obs_dropped
        );
    }

    // The static/dynamic cross-check: contradictions are evidence the
    // analyzer, the model, or the kernel is wrong — campaign-failing.
    let contradictions = report.contradictions();
    if report.cfg.analyze {
        let records = report.analysis_records();
        use rtk_analysis::static_verify::Verdict;
        eprintln!(
            "rtk-farm: static analysis: deadlock certified {}/{}, schedulable certified {}/{}, {} contradiction(s)",
            records.iter().filter(|r| r.deadlock == Verdict::Certified).count(),
            records.len(),
            records.iter().filter(|r| r.schedulable == Verdict::Certified).count(),
            records.len(),
            contradictions.len(),
        );
        for (seed, why) in &contradictions {
            eprintln!("rtk-farm: seed {seed} CONTRADICTION: {why}");
        }
    }

    if report.all_healthy() && contradictions.is_empty() {
        ExitCode::SUCCESS
    } else {
        for (seed, why) in report.failures() {
            eprintln!("rtk-farm: seed {seed} UNHEALTHY: {why}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::{parse_args, Cli};

    fn parse(args: &[&str]) -> Result<Cli, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.cfg.seeds, 256);
        assert_eq!(cli.cfg.threads, 0); // auto: all cores
        assert!(!cli.cfg.oracle);
        assert!(cli.cfg.trace.is_none());
        assert_eq!(cli.cfg.runtime, sysc::Runtime::Coro);
        assert!(cli.out.is_none()); // resolved per mode in main()
        assert!(cli.replay.is_none());
    }

    #[test]
    fn runtime_flag_selects_the_backend() {
        let cli = parse(&["--runtime", "threaded"]).unwrap();
        assert_eq!(cli.cfg.runtime, sysc::Runtime::Threaded);
        let cli = parse(&["--runtime", "coro"]).unwrap();
        assert_eq!(cli.cfg.runtime, sysc::Runtime::Coro);
    }

    #[test]
    fn unknown_runtime_is_a_usage_error() {
        // The CLI maps usage errors to exit code 2 in `main`.
        let err = parse(&["--runtime", "green-threads"]).unwrap_err();
        assert!(err.contains("--runtime"), "{err}");
        assert!(err.contains("green-threads"), "{err}");
        let err = parse(&["--runtime"]).unwrap_err();
        assert!(err.contains("expects a value"), "{err}");
    }

    #[test]
    fn oracle_flag_and_values() {
        let cli = parse(&[
            "--oracle",
            "--seeds",
            "12",
            "--base-seed",
            "7",
            "--threads",
            "3",
            "--out",
            "x.json",
        ])
        .unwrap();
        assert!(cli.cfg.oracle);
        assert_eq!(
            (cli.cfg.seeds, cli.cfg.base_seed, cli.cfg.threads),
            (12, 7, 3)
        );
        assert_eq!(cli.out.as_deref(), Some("x.json"));
    }

    #[test]
    fn trace_flags_build_a_trace_config() {
        let cli = parse(&["--trace-dir", "traces", "--trace-cap", "5000"]).unwrap();
        let tc = cli.cfg.trace.expect("trace config");
        assert_eq!(tc.dir, std::path::Path::new("traces"));
        assert_eq!(tc.cap, 5000);
        // Cap defaults to unlimited.
        let cli = parse(&["--trace-dir", "traces"]).unwrap();
        assert_eq!(cli.cfg.trace.unwrap().cap, 0);
    }

    #[test]
    fn analyze_flag_and_trace_tuning() {
        let cli = parse(&["--analyze"]).unwrap();
        assert!(cli.cfg.analyze);
        // Trace headers record the generator tuning regardless of flag
        // order, so `--replay --analyze` regenerates the exact spec.
        let cli = parse(&["--trace-dir", "t", "--quick", "--no-faults"]).unwrap();
        let tuning = cli.cfg.trace.unwrap().tuning.unwrap();
        assert!(tuning.quick);
        assert!(!tuning.faults);
        let cli = parse(&["--quick", "--trace-dir", "t"]).unwrap();
        assert!(cli.cfg.trace.unwrap().tuning.unwrap().quick);
    }

    #[test]
    fn trace_cap_without_dir_is_a_usage_error() {
        let err = parse(&["--trace-cap", "10"]).unwrap_err();
        assert!(err.contains("--trace-dir"), "{err}");
    }

    #[test]
    fn replay_mode_flags() {
        let cli = parse(&[
            "--replay",
            "traces",
            "--export-vcd",
            "w",
            "--export-chrome",
            "c",
        ])
        .unwrap();
        assert_eq!(cli.replay.as_deref(), Some(std::path::Path::new("traces")));
        assert_eq!(cli.export_vcd.as_deref(), Some(std::path::Path::new("w")));
        assert_eq!(
            cli.export_chrome.as_deref(),
            Some(std::path::Path::new("c"))
        );
    }

    #[test]
    fn exports_require_replay() {
        let err = parse(&["--export-vcd", "w"]).unwrap_err();
        assert!(err.contains("--replay"), "{err}");
    }

    #[test]
    fn replay_excludes_capture() {
        let err = parse(&["--replay", "t", "--trace-dir", "d"]).unwrap_err();
        assert!(err.contains("cannot be combined"), "{err}");
    }

    #[test]
    fn zero_seeds_is_accepted() {
        // An empty campaign is valid: the CLI writes an empty-but-valid
        // report and exits 0 (pinned by `report::empty_campaign_report`).
        let cli = parse(&["--seeds", "0"]).unwrap();
        assert_eq!(cli.cfg.seeds, 0);
    }

    #[test]
    fn zero_threads_is_a_usage_error() {
        let err = parse(&["--threads", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn unknown_option_is_a_usage_error() {
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("unknown"));
    }

    #[test]
    fn explore_flags_build_a_config() {
        let cli = parse(&[
            "--explore",
            "irq",
            "--depth",
            "64",
            "--max-states",
            "1000",
            "--no-por",
            "--adversarial",
            "--explore-dir",
            "ces",
        ])
        .unwrap();
        let e = cli.explore.expect("explore config");
        assert_eq!(e.family, super::Family::Irq);
        assert_eq!((e.depth, e.max_states), (64, 1000));
        assert!(!e.por);
        assert!(e.adversarial);
        assert_eq!(
            cli.explore_dir.as_deref(),
            Some(std::path::Path::new("ces"))
        );
    }

    #[test]
    fn explore_defaults_and_knob_order_independence() {
        // Knobs may precede --explore; defaults match ExploreConfig.
        let cli = parse(&["--depth", "10", "--explore", "mtx"]).unwrap();
        let e = cli.explore.unwrap();
        assert_eq!((e.depth, e.max_states), (10, 200_000));
        assert!(e.por && !e.adversarial && e.faults);
        let e = parse(&["--explore", "mtx"]).unwrap().explore.unwrap();
        assert_eq!(e.depth, 2000);
        // --no-faults flows into the explore config.
        let e = parse(&["--explore", "mtx", "--no-faults"])
            .unwrap()
            .explore
            .unwrap();
        assert!(!e.faults);
    }

    #[test]
    fn explore_unknown_family_lists_the_labels() {
        let err = parse(&["--explore", "nope"]).unwrap_err();
        assert!(err.contains("unknown family"), "{err}");
        for label in super::Family::ALL_LABELS {
            assert!(err.contains(label), "{err} missing {label}");
        }
    }

    #[test]
    fn explore_knobs_without_explore_are_a_usage_error() {
        for args in [
            &["--depth", "5"][..],
            &["--max-states", "5"][..],
            &["--no-por"][..],
            &["--adversarial"][..],
            &["--explore-dir", "d"][..],
        ] {
            let err = parse(args).unwrap_err();
            assert!(err.contains("--explore"), "{args:?}: {err}");
        }
    }

    #[test]
    fn explore_excludes_campaign_and_replay_modes() {
        let err = parse(&["--explore", "mtx", "--replay", "t"]).unwrap_err();
        assert!(err.contains("--replay"), "{err}");
        for args in [
            &["--explore", "mtx", "--seeds", "9"][..],
            &["--explore", "mtx", "--oracle"][..],
            &["--explore", "mtx", "--analyze"][..],
            &["--explore", "mtx", "--topology", "independent"][..],
            &["--explore", "mtx", "--trace-dir", "t"][..],
        ] {
            let err = parse(args).unwrap_err();
            assert!(err.contains("campaign option"), "{args:?}: {err}");
        }
    }

    #[test]
    fn explore_zero_bounds_are_usage_errors() {
        let err = parse(&["--explore", "mtx", "--depth", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&["--explore", "mtx", "--max-states", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&["--explore", "mtx", "--depth", "junk"]).unwrap_err();
        assert!(err.contains("--depth"), "{err}");
    }

    #[test]
    fn exports_are_allowed_with_explore() {
        let cli = parse(&["--explore", "deadlock", "--export-vcd", "w"]).unwrap();
        assert!(cli.explore.is_some());
        assert_eq!(cli.export_vcd.as_deref(), Some(std::path::Path::new("w")));
    }
}
