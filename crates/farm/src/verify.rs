//! Static/dynamic cross-validation: the `--analyze` pre-pass and its
//! contradiction rule.
//!
//! For every scenario the farm can run the static analyzer over the
//! declarative model ([`crate::model::static_model`] →
//! [`rtk_analysis::static_verify::analyze`]) *before* simulating, and
//! then hold the two accountable to each other:
//!
//! * a scenario **certified deadlock-free** must not wedge dynamically
//!   (stall or abnormal engine outcome without a panic);
//! * a scenario **certified schedulable** must not miss a post-warmup
//!   deadline, and no task may exceed its certified response bound;
//! * the observed stream must **conform** to the declared lock model
//!   (no undeclared mutexes, orders, or re-acquisitions).
//!
//! Any of these is a *contradiction* — evidence that the analyzer, the
//! model, or the kernel is wrong — and fails the campaign. The reverse
//! direction deliberately is not checked: `Refuted`/`Unknown` are
//! conservative analysis outcomes, so a refuted scenario behaving well
//! dynamically is expected, not contradictory. See
//! `docs/STATIC_ANALYSIS.md` for the full semantics.

use rtk_analysis::static_verify::{analyze, AnalysisOptions, AnalysisResult, Verdict};

use crate::build::ScenarioOutcome;
use crate::model::static_model;
use crate::scenario::ScenarioSpec;

/// Per-scenario static verdicts plus any static/dynamic
/// contradictions. Everything in here is a pure function of the spec
/// and the (digest-stable) outcome, so records are byte-identical
/// across worker-thread counts, process runtimes and hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisRecord {
    /// The seed that named the scenario.
    pub seed: u64,
    /// Static deadlock verdict.
    pub deadlock: Verdict,
    /// Static schedulability verdict.
    pub schedulable: Verdict,
    /// RM utilization of the modelled task set, parts-per-million.
    pub utilization_ppm: u64,
    /// One-line deterministic account of the analysis.
    pub summary: String,
    /// Certified response-time bound per measured task (µs), in task
    /// order; `None` when the recurrence did not certify the task.
    pub response_us: Vec<Option<u64>>,
    /// Static/dynamic contradictions (empty = consistent).
    pub contradictions: Vec<String>,
}

impl AnalysisRecord {
    /// `true` when the static and dynamic views agree.
    pub fn consistent(&self) -> bool {
        self.contradictions.is_empty()
    }
}

/// Runs the static analyzer over a scenario's declarative model.
pub fn analyze_spec(spec: &ScenarioSpec, opts: &AnalysisOptions) -> AnalysisResult {
    analyze(&static_model(spec), opts)
}

/// Cross-checks an exhaustive exploration against the `rtk-verify`
/// deadlock certificate of the explored family's kernel-executable
/// twin. A twin certified deadlock-free whose schedule tree still
/// contains a reachable deadlock state is a contradiction: the
/// certificate, the spec, or the explorer's model of the topology is
/// wrong, and the explore run fails. The reverse (refuted/unknown but
/// no deadlock found) is conservative analysis, not a contradiction.
pub fn explore_certificate_contradiction(spec: &ScenarioSpec, deadlocks: u64) -> Option<String> {
    if deadlocks == 0 {
        return None;
    }
    let analysis = analyze_spec(spec, &AnalysisOptions::default());
    (analysis.deadlock == Verdict::Certified).then(|| {
        format!(
            "rtk-verify certifies the twin (seed {}) deadlock-free, \
             but exploration reached {deadlocks} deadlock state(s)",
            spec.seed
        )
    })
}

/// Cross-validates one scenario's static analysis against its dynamic
/// outcome; returns the combined record.
pub fn verify_outcome(
    spec: &ScenarioSpec,
    analysis: &AnalysisResult,
    out: &ScenarioOutcome,
) -> AnalysisRecord {
    let mut contradictions = Vec::new();

    // A panic is its own (already campaign-failing) finding; the
    // wreckage of a half-run scenario proves nothing about verdicts.
    let clean = out.panicked.is_none();

    if clean && analysis.deadlock == Verdict::Certified {
        let wedged = out.stalled || out.engine_outcome != "limit";
        if wedged {
            contradictions.push(format!(
                "certified deadlock-free but dynamically wedged \
                 (engine={}, stalled={})",
                out.engine_outcome, out.stalled
            ));
        }
    }

    if clean && analysis.schedulable == Verdict::Certified {
        if out.post_warmup_misses > 0 {
            contradictions.push(format!(
                "certified schedulable but {} post-warmup deadline miss(es) observed",
                out.post_warmup_misses
            ));
        }
        // Per-task response bounds vs observed post-warmup maxima.
        // `max_latency_by_task` is indexed like `spec.tasks`, and the
        // model lists the measured tasks first in the same order.
        let measured = analysis.tasks.iter().filter(|t| t.measured);
        for (i, ta) in measured.enumerate() {
            let observed = out.max_latency_by_task.get(i).copied().unwrap_or(0);
            if let Some(bound) = ta.response_us {
                if observed > bound {
                    contradictions.push(format!(
                        "task {} observed {}us response, above certified bound {}us",
                        ta.name, observed, bound
                    ));
                }
            }
        }
    }

    if out.conformance_violations > 0 {
        let first = out
            .conformance_details
            .first()
            .map(String::as_str)
            .unwrap_or("");
        contradictions.push(format!(
            "{} lock-model conformance violation(s), first: {first}",
            out.conformance_violations
        ));
    }

    AnalysisRecord {
        seed: spec.seed,
        deadlock: analysis.deadlock,
        schedulable: analysis.schedulable,
        utilization_ppm: analysis.utilization_ppm,
        summary: analysis.summary(),
        response_us: analysis
            .tasks
            .iter()
            .filter(|t| t.measured)
            .map(|t| t.response_us)
            .collect(),
        contradictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::run_scenario_analyzed;
    use crate::scenario::Tuning;

    fn quick(faults: bool) -> Tuning {
        Tuning {
            quick: true,
            faults,
        }
    }

    #[test]
    fn healthy_scan_is_contradiction_free() {
        // A slice of the campaign: static verdicts must survive the
        // dynamic cross-check on every seed (the CI job scans more).
        for seed in 0..24 {
            let spec = ScenarioSpec::generate(seed, &quick(true));
            let analysis = analyze_spec(&spec, &AnalysisOptions::default());
            let out = run_scenario_analyzed(&spec, false, sysc::Runtime::default(), None);
            let rec = verify_outcome(&spec, &analysis, &out);
            assert!(
                rec.consistent(),
                "seed {seed} ({}): {:?}\n{}",
                spec.topology.label(),
                rec.contradictions,
                rec.summary
            );
        }
    }

    #[test]
    fn wedged_run_contradicts_deadlock_certificate() {
        let spec = ScenarioSpec::generate(0, &quick(false));
        let analysis = analyze_spec(&spec, &AnalysisOptions::default());
        assert_eq!(analysis.deadlock, Verdict::Certified);
        let out = ScenarioOutcome {
            seed: spec.seed,
            engine_outcome: "starved",
            stalled: true,
            ..ScenarioOutcome::default()
        };
        let rec = verify_outcome(&spec, &analysis, &out);
        assert!(!rec.consistent());
        assert!(rec.contradictions[0].contains("wedged"));
    }

    #[test]
    fn observed_miss_contradicts_schedulable_certificate() {
        // Find a seed whose scenario certifies schedulable, then forge
        // a post-warmup miss into its outcome.
        let (spec, analysis) = (0..500)
            .map(|seed| {
                let spec = ScenarioSpec::generate(seed, &quick(false));
                let analysis = analyze_spec(&spec, &AnalysisOptions::default());
                (spec, analysis)
            })
            .find(|(_, a)| a.schedulable == Verdict::Certified)
            .expect("some seed certifies");
        let out = ScenarioOutcome {
            seed: spec.seed,
            engine_outcome: "limit",
            post_warmup_misses: 3,
            ..ScenarioOutcome::default()
        };
        let rec = verify_outcome(&spec, &analysis, &out);
        assert!(!rec.consistent());
        assert!(rec.contradictions[0].contains("deadline miss"));
    }

    #[test]
    fn conformance_violations_always_contradict() {
        let spec = ScenarioSpec::generate(1, &quick(false));
        let analysis = analyze_spec(&spec, &AnalysisOptions::default());
        let out = ScenarioOutcome {
            seed: spec.seed,
            engine_outcome: "limit",
            conformance_violations: 2,
            conformance_details: vec!["tsk1 took undeclared lock order a -> b".into()],
            ..ScenarioOutcome::default()
        };
        let rec = verify_outcome(&spec, &analysis, &out);
        assert!(!rec.consistent());
        assert!(rec.contradictions[0].contains("conformance"));
    }
}
