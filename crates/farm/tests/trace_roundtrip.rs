//! Trace platform end-to-end properties: golden-fixture stability of
//! the binary format, replay verdict fidelity for a pinned divergent
//! stream, bounded-capture drop accounting, and thread-count
//! invariance of captured trace bytes.
//!
//! The golden fixture (`tests/fixtures/golden_divergent.rtkt`) pins the
//! wire format: if an encoder change alters the bytes, the fixture test
//! fails and `docs/TRACE_FORMAT.md` (plus `FORMAT_VERSION`) must be
//! revisited deliberately. Regenerate with
//! `cargo test -p rtk-farm --test trace_roundtrip -- --ignored`.

use std::path::{Path, PathBuf};

use rtk_analysis::trace_codec::{
    decode_trace, encode_trace, read_trace, TraceHeader, TraceTrailer,
};
use rtk_core::{ObsEvent, SemId, StampedEvent, TaskId, WaitObj, WakeCode};
use rtk_farm::{
    check, replay_trace, run_campaign, CampaignConfig, CampaignReport, TraceConfig, Tuning,
};

fn t(n: u32) -> TaskId {
    TaskId::from_raw(n)
}

fn sem(n: u32) -> SemId {
    SemId::from_raw(n)
}

/// The pinned divergent decision stream: a healthy two-task prologue
/// followed by a priority-inversion bug — after the urgent `tsk1`
/// blocks on the semaphore and is woken, the kernel keeps running the
/// *less* urgent `tsk2`. The reference model mandates a dispatch of
/// `tsk1`, so the oracle diverges at event index 10.
fn divergent_stream() -> Vec<StampedEvent> {
    let evs = vec![
        (0, ObsEvent::TaskCreate { tid: t(1), pri: 10 }),
        (0, ObsEvent::TaskCreate { tid: t(2), pri: 20 }),
        (0, ObsEvent::TaskStart { tid: t(1) }),
        (0, ObsEvent::TaskStart { tid: t(2) }),
        (
            0,
            ObsEvent::SemCreate {
                id: sem(1),
                init: 0,
                max: 10,
                pri_order: false,
            },
        ),
        (0, ObsEvent::Dispatch { tid: t(1), pri: 10 }),
        (
            1,
            ObsEvent::Block {
                tid: t(1),
                obj: WaitObj::Sem(sem(1), 1),
                deadline_tick: None,
            },
        ),
        (1, ObsEvent::Dispatch { tid: t(2), pri: 20 }),
        (3, ObsEvent::SemSignal { id: sem(1), cnt: 1 }),
        (
            3,
            ObsEvent::Wakeup {
                tid: t(1),
                obj: WaitObj::Sem(sem(1), 1),
                code: WakeCode::Ok,
            },
        ),
        // BUG under test: tsk1 (pri 10) is ready again, yet tsk2
        // (pri 20) is dispatched.
        (3, ObsEvent::Dispatch { tid: t(2), pri: 20 }),
    ];
    evs.into_iter()
        .map(|(tick, ev)| StampedEvent { tick, ev })
        .collect()
}

/// Index of the first divergent event in [`divergent_stream`].
const PINNED_DIVERGENCE_INDEX: u64 = 10;

fn golden_header() -> TraceHeader {
    TraceHeader::new(0xD1BE57, "handcrafted", "none")
}

fn golden_bytes() -> Vec<u8> {
    let events = divergent_stream();
    encode_trace(
        &golden_header(),
        &events,
        Some(TraceTrailer::clean(events.len() as u64)),
    )
}

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_divergent.rtkt")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtk_trace_rt_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
#[ignore = "writes the golden fixture; run once after a deliberate format change"]
fn regenerate_golden_fixture() {
    std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
    std::fs::write(fixture_path(), golden_bytes()).unwrap();
}

/// The committed fixture is byte-for-byte what the current encoder
/// produces — wire-format drift cannot land silently.
#[test]
fn golden_fixture_is_byte_stable() {
    let committed = std::fs::read(fixture_path()).expect(
        "fixture missing; regenerate with `cargo test -p rtk-farm --test \
         trace_roundtrip -- --ignored`",
    );
    assert_eq!(
        committed,
        golden_bytes(),
        "encoder output drifted from the pinned fixture"
    );
}

/// Decode(fixture) returns exactly the original stream, and replaying
/// it reproduces the batch oracle's verdict — including the pinned
/// first-divergence index — from the file alone.
#[test]
fn golden_fixture_round_trips_and_replays_with_pinned_verdict() {
    let decoded = decode_trace(&golden_bytes()).unwrap();
    assert!(decoded.complete());
    assert_eq!(decoded.skipped, 0);
    assert_eq!(decoded.events, divergent_stream());
    assert_eq!(decoded.header, golden_header());

    // The batch oracle over the raw events...
    let raw: Vec<ObsEvent> = divergent_stream().into_iter().map(|se| se.ev).collect();
    let live = check(&raw);
    let live_div = live.divergence.expect("the stream must diverge");
    assert_eq!(live_div.index as u64, PINNED_DIVERGENCE_INDEX);

    // ...and the file-based replay agree exactly.
    let replayed = replay_trace(&fixture_path()).unwrap();
    assert!(replayed.complete && replayed.clean);
    let div = replayed.verdict.divergence.expect("replay must diverge");
    assert_eq!(div.index, live_div.index);
    assert_eq!(div.detail, live_div.detail);
    assert_eq!(replayed.verdict.events_checked, live.events_checked);
    assert_eq!(replayed.verdict.events_checked, PINNED_DIVERGENCE_INDEX);
}

/// A campaign with a bounded per-trace cap: the excess is dropped
/// deterministically, accounted in the (digest-excluded) report
/// counter, and the capped traces still replay as far as they go.
#[test]
fn bounded_capture_drop_accounting_is_deterministic() {
    let run = |dir: &Path, threads: usize| {
        let cfg = CampaignConfig {
            base_seed: 700,
            seeds: 6,
            threads,
            tuning: Tuning {
                quick: true,
                faults: true,
            },
            oracle: false,
            topology: None,
            runtime: sysc::Runtime::default(),
            trace: Some(TraceConfig {
                dir: dir.to_path_buf(),
                cap: 40,
                tuning: None,
            }),
            analyze: false,
        };
        let outcomes = run_campaign(&cfg);
        let report = CampaignReport::new(cfg, outcomes);
        let agg = report.aggregate();
        (report, agg.obs_dropped)
    };
    let d1 = tmp_dir("cap1");
    let dn = tmp_dir("capn");
    let (r1, dropped1) = run(&d1, 1);
    let (rn, droppedn) = run(&dn, 4);

    // Real scenarios emit far more than 40 decisions.
    assert!(dropped1 > 0, "cap of 40 must drop events");
    // Drop accounting is simulated-domain deterministic...
    assert_eq!(dropped1, droppedn);
    // ...and excluded from the digest: capped capture never perturbs
    // campaign results.
    assert_eq!(r1.digest(), rn.digest());
    // Surfaced in the timed report, not the digest-bearing one.
    assert!(r1.to_json_timed(1).contains("\"obs_dropped\""));
    assert!(!r1.to_json().contains("obs_dropped"));

    // Capped traces decode: exactly `cap` events, trailer records the
    // drops, and the replay applies no end-of-stream invariant.
    for entry in std::fs::read_dir(&d1).unwrap() {
        let path = entry.unwrap().path();
        let decoded = read_trace(&path).unwrap();
        assert!(decoded.complete());
        assert_eq!(decoded.events.len(), 40);
        let trailer = decoded.trailer.unwrap();
        assert!(trailer.dropped > 0);
        assert_eq!(trailer.events, 40 + trailer.dropped);
        let replayed = replay_trace(&path).unwrap();
        assert!(replayed.verdict.divergence.is_none(), "{:?}", path);
    }
    std::fs::remove_dir_all(&d1).ok();
    std::fs::remove_dir_all(&dn).ok();
}

/// Captured trace files are byte-identical per seed no matter how many
/// worker threads ran the campaign: the observation stream is part of
/// the simulated domain, and the writer serializes it without any
/// host-schedule leakage.
#[test]
fn trace_bytes_are_thread_count_invariant() {
    let capture = |dir: &Path, threads: usize| {
        let cfg = CampaignConfig {
            base_seed: 900,
            seeds: 8,
            threads,
            tuning: Tuning {
                quick: true,
                faults: true,
            },
            oracle: true,
            topology: None,
            runtime: sysc::Runtime::default(),
            trace: Some(TraceConfig {
                dir: dir.to_path_buf(),
                cap: 0,
                tuning: None,
            }),
            analyze: false,
        };
        run_campaign(&cfg);
    };
    let d1 = tmp_dir("thr1");
    let dn = tmp_dir("thrn");
    capture(&d1, 1);
    capture(&dn, 4);

    let mut names: Vec<String> = std::fs::read_dir(&d1)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(names.len(), 8);
    for name in &names {
        let a = std::fs::read(d1.join(name)).unwrap();
        let b = dn.join(name);
        let b = std::fs::read(&b).unwrap_or_else(|e| panic!("{name} missing in N-thread dir: {e}"));
        assert_eq!(a, b, "trace bytes differ for {name}");
    }
    std::fs::remove_dir_all(&d1).ok();
    std::fs::remove_dir_all(&dn).ok();
}
