//! Properties of the `--explore` bounded model checker:
//!
//! 1. **Termination + determinism** — every healthy family's schedule
//!    tree is finite under the default bounds and two runs produce
//!    byte-identical reports.
//! 2. **POR soundness with teeth** — partial-order reduction must
//!    visit *strictly fewer* states while reaching identical verdicts
//!    (the reduction prunes orders, never outcomes).
//! 3. **Mutation sensitivity beyond the random hunt** — two spec
//!    mutations that thousands of random-seed campaign replays cannot
//!    distinguish from the healthy spec are convicted by exhaustive
//!    exploration, and the conviction is distilled into a concrete
//!    `.rtkt` counterexample that replays and convicts offline too.
//! 4. **Deadlock reachability** — the demonstration family's deadlock
//!    is found, counterexampled, replayable and exportable.
//!
//! See `docs/EXPLORATION.md` for the semantics these tests pin.

use rtk_farm::{
    replay_trace, run_exploration, run_scenario_observed, write_counterexamples, Checker,
    ExploreConfig, ExploreOutcome, Family, ScenarioSpec, SpecMutation, SpecState, Tuning,
};
use std::collections::BTreeSet;
use std::path::PathBuf;
use sysc::Runtime;

fn cfg(family: Family) -> ExploreConfig {
    ExploreConfig {
        family,
        ..ExploreConfig::default()
    }
}

fn explore(c: &ExploreConfig) -> ExploreOutcome {
    run_exploration(c, Runtime::default())
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The healthy families terminate inside the default bounds without a
/// single violation, and the whole report is a pure function of the
/// config.
#[test]
fn healthy_families_terminate_clean_and_deterministic() {
    for family in [Family::Mtx, Family::Irq, Family::Chain] {
        let c = cfg(family);
        let a = explore(&c);
        let b = explore(&c);
        assert!(
            !a.report.truncated,
            "{family}: exploration must exhaust the tree within default bounds"
        );
        assert!(
            a.report.clean(),
            "{family}: healthy spec must explore clean, got {:?}",
            a.report.violations
        );
        assert!(a.report.states > 1, "{family}: trivial tree");
        assert!(a.report.transitions >= a.report.states - 1);
        assert_eq!(
            a.report.to_json(),
            b.report.to_json(),
            "{family}: explore report must be deterministic"
        );
    }
}

/// POR visits strictly fewer states than the unreduced walk, with
/// identical verdicts (violation kinds, deadlock presence, cleanness)
/// — with and without fault branch points.
#[test]
fn por_reduces_states_with_identical_verdicts() {
    let kinds = |o: &ExploreOutcome| -> BTreeSet<String> {
        o.report.violations.iter().map(|v| v.kind.clone()).collect()
    };
    for family in [Family::Mtx, Family::Irq, Family::Chain] {
        for faults in [true, false] {
            let on = explore(&ExploreConfig {
                family,
                faults,
                ..ExploreConfig::default()
            });
            let off = explore(&ExploreConfig {
                family,
                faults,
                por: false,
                ..ExploreConfig::default()
            });
            assert!(!on.report.truncated && !off.report.truncated);
            if family == Family::Chain {
                // Chain's staggered releases never produce a commuting
                // frontier: POR must then be a no-op, not a distortion.
                assert!(
                    on.report.states <= off.report.states,
                    "{family} (faults={faults}): POR enlarged the tree"
                );
            } else {
                // The acceptance-pinned 2-task families: coincident
                // independent release/arrival frontiers must collapse.
                assert!(
                    on.report.states < off.report.states,
                    "{family} (faults={faults}): POR-on must visit strictly fewer states \
                     ({} vs {})",
                    on.report.states,
                    off.report.states
                );
                assert!(on.report.collapsed > 0, "{family}: nothing collapsed");
            }
            assert_eq!(
                on.report.clean(),
                off.report.clean(),
                "{family} (faults={faults}): POR changed the verdict"
            );
            assert_eq!(
                on.report.deadlocks > 0,
                off.report.deadlocks > 0,
                "{family} (faults={faults}): POR changed deadlock reachability"
            );
            assert_eq!(
                kinds(&on),
                kinds(&off),
                "{family} (faults={faults}): POR changed the violation kinds"
            );
        }
    }
}

/// Replays every observed event stream of a random quick campaign
/// slice through a checker carrying `mutation`, asserting the mutant
/// stays indistinguishable from the healthy spec on random schedules.
fn assert_random_hunt_misses(mutation: SpecMutation, seeds: u64) {
    let tuning = Tuning {
        quick: true,
        faults: true,
    };
    for seed in 0..seeds {
        let spec = ScenarioSpec::generate(seed, &tuning);
        let (_, events) = run_scenario_observed(&spec, Runtime::default());
        let mut mutated = Checker::with_mutation(mutation);
        let mut healthy = Checker::new();
        for se in &events {
            mutated.push(&se.ev);
            healthy.push(&se.ev);
        }
        assert!(
            !healthy.diverged(),
            "seed {seed}: healthy checker must accept its own kernel stream"
        );
        assert!(
            !mutated.diverged(),
            "seed {seed}: the {mutation:?} mutant must survive random replays \
             (otherwise the random hunt would already catch it)"
        );
    }
}

/// Runs one mutation-sensitivity proof: exploration of `family` with
/// the mutated spec reports invariant violations (red), the healthy
/// exploration of the same family is clean (green, pinned by
/// `healthy_families_terminate_clean_and_deterministic`), and the
/// `.rtkt` counterexample convicts the mutant offline: replaying it
/// through the *mutated* spec reproduces the broken state (its
/// invariants fail), while the *healthy* spec either rejects the
/// stream outright (a mandated wakeup is missing) or traverses it
/// without ever entering a broken state.
fn assert_exploration_convicts(family: Family, mutation: SpecMutation, dir: &str) {
    let out = explore(&ExploreConfig {
        family,
        mutation: Some(mutation),
        ..ExploreConfig::default()
    });
    assert!(
        out.report.invariant_violations > 0,
        "{family}: exploration must convict {mutation:?}, report clean={}",
        out.report.clean()
    );
    assert!(
        !out.counterexamples.is_empty(),
        "{family}: conviction must come with a counterexample"
    );

    let dir = tmp_dir(dir);
    let written = write_counterexamples(&out, &dir).expect("write counterexamples");
    assert_eq!(
        written.len(),
        out.counterexamples.len().min(8),
        "one .rtkt per retained counterexample"
    );
    let replayed = replay_trace(&written[0]).expect("counterexample must decode");
    assert!(replayed.complete && replayed.clean);

    // Red: the mutant accepts its own counterexample stream and lands
    // in the state whose invariants the explorer flagged.
    let mut mutant = SpecState::with_mutation(mutation);
    for se in &replayed.events {
        mutant
            .apply(&se.ev)
            .expect("the mutant must accept its own counterexample stream");
    }
    assert!(
        !mutant.invariant_violations().is_empty(),
        "{family}: replaying the counterexample through the mutant must \
         reproduce the broken state"
    );

    // Green: the healthy spec never reaches a broken state on the same
    // stream — it either rejects an event (the stream omits a wakeup
    // the µ-ITRON rules mandate) or stays invariant-clean throughout.
    let mut healthy = SpecState::new();
    let mut rejected = false;
    for se in &replayed.events {
        if healthy.apply(&se.ev).is_err() {
            rejected = true;
            break;
        }
        assert!(
            healthy.invariant_violations().is_empty(),
            "{family}: the healthy spec reached a broken state on the \
             counterexample stream — the invariant, not the mutant, is wrong"
        );
    }
    let _ = rejected; // either outcome above is a valid green
}

/// Mutation 1: skip the post-timeout re-serve of semaphore waiters
/// (`SkipTimeoutReserve`). Random campaign streams never arm a
/// multi-count wait in front of banked counts, so the mutant survives
/// the hunt; the `irq` family's timeout tie convicts it exhaustively.
#[test]
fn skip_timeout_reserve_is_convicted_by_exploration_not_by_the_hunt() {
    assert_random_hunt_misses(SpecMutation::SkipTimeoutReserve, 48);
    assert_exploration_convicts(
        Family::Irq,
        SpecMutation::SkipTimeoutReserve,
        "explore-ce-irq",
    );
}

/// Mutation 2: compute priority inheritance from direct waiters only
/// (`DirectInheritanceOnly`). No random topology nests inheritance
/// mutexes, so the mutant survives the hunt; the `chain` family's
/// transitive T1→m1→T2→m2→T3 chain convicts it exhaustively.
#[test]
fn direct_inheritance_only_is_convicted_by_exploration_not_by_the_hunt() {
    assert_random_hunt_misses(SpecMutation::DirectInheritanceOnly, 48);
    assert_exploration_convicts(
        Family::Chain,
        SpecMutation::DirectInheritanceOnly,
        "explore-ce-chain",
    );
}

/// The deadlock demonstration family: every schedule wedges, the
/// explorer reports it, and the counterexample replays *clean* through
/// the healthy spec (the deadlock is real kernel behaviour, not a spec
/// divergence) and exports through the analysis export paths.
#[test]
fn deadlock_family_is_found_replayable_and_exportable() {
    let out = explore(&cfg(Family::Deadlock));
    assert!(out.report.deadlocks > 0, "the deadlock must be reachable");
    assert!(!out.report.clean());
    assert!(!out.counterexamples.is_empty());

    let dir = tmp_dir("explore-ce-deadlock");
    let written = write_counterexamples(&out, &dir).expect("write counterexamples");
    let replayed = replay_trace(&written[0]).expect("counterexample must decode");
    assert!(replayed.complete && replayed.clean);
    assert!(
        replayed.verdict.divergence.is_none(),
        "a healthy-spec deadlock stream must replay clean: {:?}",
        replayed.verdict.divergence
    );

    // The statically-found deadlock renders like any replayed trace.
    let vcd = rtk_analysis::obs_to_vcd(&replayed.events, replayed.header.tick_us);
    assert!(vcd.contains("$enddefinitions"));
    let chrome = rtk_analysis::obs_to_chrome_trace(&replayed.events, replayed.header.tick_us);
    assert!(chrome.starts_with('[') && chrome.contains("\"ph\""));
}

/// The families with a kernel-executable twin cross-execute healthy
/// and carry a certificate verdict; the healthy explorations contradict
/// no certificate.
#[test]
fn twin_families_cross_execute_and_certificates_hold() {
    for family in [Family::Mtx, Family::Irq] {
        let out = explore(&cfg(family));
        assert_eq!(
            out.report.cross_execution, "healthy",
            "{family}: twin must cross-execute clean on the real kernel"
        );
        assert_ne!(
            out.report.certificate, "none",
            "{family}: twin must be analyzed"
        );
        assert!(out.report.certificate_contradiction.is_none());
    }
    // Families without a twin stay unanchored, not wrong.
    let out = explore(&cfg(Family::Chain));
    assert_eq!(out.report.certificate, "none");
    assert_eq!(out.report.cross_execution, "none");
}

/// The adversarial scheduler mode is a pruning of the exhaustive tree:
/// it visits no more states, still terminates, and finds no violation
/// the exhaustive walk would not (the healthy families stay clean even
/// under maximum preemption pressure).
#[test]
fn adversarial_mode_prunes_and_stays_clean() {
    for family in [Family::Mtx, Family::Irq] {
        let full = explore(&ExploreConfig {
            family,
            por: false,
            ..ExploreConfig::default()
        });
        let adv = explore(&ExploreConfig {
            family,
            adversarial: true,
            ..ExploreConfig::default()
        });
        assert!(!adv.report.truncated);
        assert!(
            adv.report.clean(),
            "{family}: adversarial walk must stay clean"
        );
        assert!(
            adv.report.states <= full.report.states,
            "{family}: adversarial mode must not enlarge the tree"
        );
        assert!(!adv.report.por, "POR is off in adversarial mode");
    }
}
