//! Oracle sensitivity and soundness tests.
//!
//! Soundness: real kernel runs across every topology replay through the
//! spec with zero divergences. Sensitivity: handcrafted decision
//! streams that encode each bug class the oracle exists to catch
//! (wrong dispatch choice, mis-inherited priority, wrong wakeup order,
//! lost wakeups, queue barging, late timeouts) must each be rejected,
//! which is the in-tree version of the kernel mutation campaigns used
//! during bring-up (disabled priority inheritance, tail-popping wait
//! queues and one-tick-late timers were all detected this way).

use rtk_core::{ObsEvent, SemId, TaskId, WaitObj, WakeCode};
use rtk_farm::{check, run_scenario_checked, ScenarioSpec, Topology, Tuning};

fn t(n: u32) -> TaskId {
    TaskId::from_raw(n)
}

fn sem(n: u32) -> SemId {
    SemId::from_raw(n)
}

/// A minimal healthy prologue: two tasks (pri 10 and 20) started, the
/// more urgent one dispatched.
fn prologue() -> Vec<ObsEvent> {
    vec![
        ObsEvent::TaskCreate { tid: t(1), pri: 10 },
        ObsEvent::TaskCreate { tid: t(2), pri: 20 },
        ObsEvent::TaskStart { tid: t(1) },
        ObsEvent::TaskStart { tid: t(2) },
        ObsEvent::SemCreate {
            id: sem(1),
            init: 0,
            max: 10,
            pri_order: false,
        },
        ObsEvent::Dispatch { tid: t(1), pri: 10 },
    ]
}

#[test]
fn healthy_stream_is_accepted() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::SemSignal { id: sem(1), cnt: 1 },
        ObsEvent::Wakeup {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            code: WakeCode::Ok,
        },
        ObsEvent::Preempt { tid: t(2) },
        ObsEvent::Dispatch { tid: t(1), pri: 10 },
    ]);
    let v = check(&evs);
    assert!(v.divergence.is_none(), "{:?}", v.divergence);
    assert_eq!(v.events_checked, evs.len() as u64);
}

#[test]
fn dispatching_the_wrong_task_diverges() {
    let mut evs = prologue();
    evs.pop(); // drop the correct dispatch of tsk1
    evs.push(ObsEvent::Dispatch { tid: t(2), pri: 20 });
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("tsk1"), "{d}");
}

#[test]
fn dispatching_at_a_stale_priority_diverges() {
    let mut evs = prologue();
    evs.pop();
    // Same task, wrong current priority (as if a boost was not applied
    // or not dropped).
    evs.push(ObsEvent::Dispatch { tid: t(1), pri: 9 });
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("current priority 10"), "{d}");
}

#[test]
fn waking_out_of_queue_order_diverges() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::Block {
            tid: t(2),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::SemSignal { id: sem(1), cnt: 2 },
        // tsk1 queued first; waking tsk2 first is a spec violation.
        ObsEvent::Wakeup {
            tid: t(2),
            obj: WaitObj::Sem(sem(1), 1),
            code: WakeCode::Ok,
        },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("tsk1"), "{d}");
}

#[test]
fn lost_wakeup_diverges() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::SemSignal { id: sem(1), cnt: 1 },
        // The mandated wakeup of tsk1 never appears.
        ObsEvent::Preempt { tid: t(2) },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("mandates wakeup of tsk1"), "{d}");
}

#[test]
fn lost_wakeup_at_end_of_run_diverges() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::SemSignal { id: sem(1), cnt: 1 },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("never observed"), "{d}");
}

#[test]
fn barging_past_waiters_diverges() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::SemSignal { id: sem(1), cnt: 1 },
        ObsEvent::Wakeup {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            code: WakeCode::Ok,
        },
        ObsEvent::Block {
            tid: t(2),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        // tsk1 runs again and "immediately" takes a count although
        // tsk2 is queued: no-barging violation.
        ObsEvent::Dispatch { tid: t(1), pri: 10 },
        ObsEvent::SemSignal { id: sem(1), cnt: 1 },
        ObsEvent::Wakeup {
            tid: t(2),
            obj: WaitObj::Sem(sem(1), 1),
            code: WakeCode::Ok,
        },
        ObsEvent::SemTake {
            id: sem(1),
            tid: t(1),
            cnt: 1,
        },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("count 0"), "{d}");
}

#[test]
fn late_timeout_diverges() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: Some(5),
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        // One tick late: the bug signature of a timing-wheel re-arm
        // losing the residual.
        ObsEvent::TimerFire { tid: t(1), tick: 6 },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("armed it for tick 5"), "{d}");
}

#[test]
fn timely_timeout_is_accepted() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: Some(5),
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::TimerFire { tid: t(1), tick: 5 },
        ObsEvent::Wakeup {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            code: WakeCode::Timeout,
        },
    ]);
    let v = check(&evs);
    assert!(v.divergence.is_none(), "{:?}", v.divergence);
}

/// Soundness over the real kernel: one representative seed per
/// topology replays clean, and actually exercises the oracle.
#[test]
fn real_scenarios_replay_clean_through_the_oracle() {
    let tuning = Tuning {
        quick: true,
        faults: true,
    };
    let mut seen = std::collections::BTreeSet::new();
    for seed in 0..256 {
        let spec = ScenarioSpec::generate(seed, &tuning);
        if !seen.insert(spec.topology.label()) {
            continue;
        }
        let out = run_scenario_checked(&spec, true);
        assert!(
            out.divergence.is_none(),
            "seed {seed} ({}): {:?}",
            spec.topology.label(),
            out.divergence
        );
        assert!(out.oracle_events > 0, "seed {seed} recorded no events");
    }
    assert_eq!(seen.len(), 8, "topology coverage shrank: {seen:?}");
}

/// The mutex topologies specifically must put inheritance/ceiling
/// boosts on the wire (the oracle verifies priority at every dispatch,
/// so a scenario where boosts never happen would verify nothing).
#[test]
fn mutex_scenarios_exercise_contention() {
    let tuning = Tuning {
        quick: true,
        faults: false,
    };
    let mut checked = 0u64;
    for seed in 0..512 {
        let spec = ScenarioSpec::generate(seed, &tuning);
        if !matches!(spec.topology, Topology::MtxChain { .. }) {
            continue;
        }
        let out = run_scenario_checked(&spec, true);
        assert!(
            out.divergence.is_none(),
            "seed {seed}: {:?}",
            out.divergence
        );
        checked += out.oracle_events;
        if checked > 10_000 {
            return;
        }
    }
    assert!(checked > 0, "no mutex scenario in the first 512 seeds");
}
