//! Oracle sensitivity and soundness tests.
//!
//! Soundness: real kernel runs across every topology replay through the
//! spec with zero divergences. Sensitivity: handcrafted decision
//! streams that encode each bug class the oracle exists to catch
//! (wrong dispatch choice, mis-inherited priority, wrong wakeup order,
//! lost wakeups, queue barging, late timeouts) must each be rejected,
//! which is the in-tree version of the kernel mutation campaigns used
//! during bring-up (disabled priority inheritance, tail-popping wait
//! queues and one-tick-late timers were all detected this way).

use rtk_core::{CycId, MplId, MtxId, MtxPolicy, ObsEvent, SemId, TaskId, WaitObj, WakeCode};
use rtk_farm::{check, run_scenario_checked, ScenarioSpec, Topology, Tuning};

fn t(n: u32) -> TaskId {
    TaskId::from_raw(n)
}

fn sem(n: u32) -> SemId {
    SemId::from_raw(n)
}

fn mtx(n: u32) -> MtxId {
    MtxId::from_raw(n)
}

fn mpl(n: u32) -> MplId {
    MplId::from_raw(n)
}

/// A minimal healthy prologue: two tasks (pri 10 and 20) started, the
/// more urgent one dispatched.
fn prologue() -> Vec<ObsEvent> {
    vec![
        ObsEvent::TaskCreate { tid: t(1), pri: 10 },
        ObsEvent::TaskCreate { tid: t(2), pri: 20 },
        ObsEvent::TaskStart { tid: t(1) },
        ObsEvent::TaskStart { tid: t(2) },
        ObsEvent::SemCreate {
            id: sem(1),
            init: 0,
            max: 10,
            pri_order: false,
        },
        ObsEvent::Dispatch { tid: t(1), pri: 10 },
    ]
}

#[test]
fn healthy_stream_is_accepted() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::SemSignal { id: sem(1), cnt: 1 },
        ObsEvent::Wakeup {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            code: WakeCode::Ok,
        },
        ObsEvent::Preempt { tid: t(2) },
        ObsEvent::Dispatch { tid: t(1), pri: 10 },
    ]);
    let v = check(&evs);
    assert!(v.divergence.is_none(), "{:?}", v.divergence);
    assert_eq!(v.events_checked, evs.len() as u64);
}

#[test]
fn dispatching_the_wrong_task_diverges() {
    let mut evs = prologue();
    evs.pop(); // drop the correct dispatch of tsk1
    evs.push(ObsEvent::Dispatch { tid: t(2), pri: 20 });
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("tsk1"), "{d}");
}

#[test]
fn dispatching_at_a_stale_priority_diverges() {
    let mut evs = prologue();
    evs.pop();
    // Same task, wrong current priority (as if a boost was not applied
    // or not dropped).
    evs.push(ObsEvent::Dispatch { tid: t(1), pri: 9 });
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("current priority 10"), "{d}");
}

#[test]
fn waking_out_of_queue_order_diverges() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::Block {
            tid: t(2),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::SemSignal { id: sem(1), cnt: 2 },
        // tsk1 queued first; waking tsk2 first is a spec violation.
        ObsEvent::Wakeup {
            tid: t(2),
            obj: WaitObj::Sem(sem(1), 1),
            code: WakeCode::Ok,
        },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("tsk1"), "{d}");
}

#[test]
fn lost_wakeup_diverges() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::SemSignal { id: sem(1), cnt: 1 },
        // The mandated wakeup of tsk1 never appears.
        ObsEvent::Preempt { tid: t(2) },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("mandates wakeup of tsk1"), "{d}");
}

#[test]
fn lost_wakeup_at_end_of_run_diverges() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::SemSignal { id: sem(1), cnt: 1 },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("never observed"), "{d}");
}

#[test]
fn barging_past_waiters_diverges() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::SemSignal { id: sem(1), cnt: 1 },
        ObsEvent::Wakeup {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            code: WakeCode::Ok,
        },
        ObsEvent::Block {
            tid: t(2),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        // tsk1 runs again and "immediately" takes a count although
        // tsk2 is queued: no-barging violation.
        ObsEvent::Dispatch { tid: t(1), pri: 10 },
        ObsEvent::SemSignal { id: sem(1), cnt: 1 },
        ObsEvent::Wakeup {
            tid: t(2),
            obj: WaitObj::Sem(sem(1), 1),
            code: WakeCode::Ok,
        },
        ObsEvent::SemTake {
            id: sem(1),
            tid: t(1),
            cnt: 1,
        },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("count 0"), "{d}");
}

#[test]
fn late_timeout_diverges() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: Some(5),
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        // One tick late: the bug signature of a timing-wheel re-arm
        // losing the residual.
        ObsEvent::TimerFire { tid: t(1), tick: 6 },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("armed it for tick 5"), "{d}");
}

#[test]
fn timely_timeout_is_accepted() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: Some(5),
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::TimerFire { tid: t(1), tick: 5 },
        ObsEvent::Wakeup {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            code: WakeCode::Timeout,
        },
    ]);
    let v = check(&evs);
    assert!(v.divergence.is_none(), "{:?}", v.divergence);
}

// ---------------------------------------------------------------------
// Adversarial streams over the widened grammar (PR 5). Each stream is
// the signature of a kernel mutation the widened oracle was proven to
// catch live (the campaign flags the seed): skipping
// release-all-held-mutexes in `tk_ter_tsk`, off-by-one mpl coalescing,
// suspended-task dispatch, dispatching inside a dispatch-disabled
// window, and cyclic-handler schedule drift.
// ---------------------------------------------------------------------

/// Kernel mutation: `tk_ter_tsk` skips releasing the victim's held
/// mutexes. Signature (live campaign: seed 15, event #583): a later
/// lock attempt blocks on a mutex the spec released at termination.
#[test]
fn terminate_without_mutex_release_diverges() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::MtxCreate {
            id: mtx(1),
            policy: MtxPolicy::Inherit,
        },
        ObsEvent::MtxLock {
            id: mtx(1),
            tid: t(1),
        },
        // tsk1 blocks elsewhere while still holding mtx1.
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        // tsk2 terminates tsk1, which holds mtx1 with no waiters: the
        // spec frees the mutex.
        ObsEvent::TaskTerminate { tid: t(1) },
        // The buggy kernel still thinks tsk1 owns it, so tsk2's lock
        // attempt blocks — the spec says it completes immediately.
        ObsEvent::Block {
            tid: t(2),
            obj: WaitObj::Mtx(mtx(1)),
            deadline_tick: None,
        },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("completes immediately"), "{d}");
}

/// With a waiter queued, the spec mandates the ownership-transfer
/// wakeup right after the termination; a kernel that skips the
/// release never emits it.
#[test]
fn terminate_with_queued_waiter_mandates_transfer_wakeup() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::MtxCreate {
            id: mtx(1),
            policy: MtxPolicy::Inherit,
        },
        ObsEvent::MtxLock {
            id: mtx(1),
            tid: t(1),
        },
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::Block {
            tid: t(2),
            obj: WaitObj::Mtx(mtx(1)),
            deadline_tick: None,
        },
        // tsk3 terminates the owner; the spec hands mtx1 to tsk2 and
        // mandates its wakeup as the very next event.
        ObsEvent::TaskCreate { tid: t(3), pri: 30 },
        ObsEvent::TaskStart { tid: t(3) },
        ObsEvent::Dispatch { tid: t(3), pri: 30 },
        ObsEvent::TaskTerminate { tid: t(1) },
        // ...but the kernel reports something else instead.
        ObsEvent::Preempt { tid: t(3) },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("mandates wakeup of tsk2"), "{d}");
}

/// Kernel mutation: off-by-one coalescing in the mpl arena. Signature
/// (live campaign: seed 13, event #128): after release + re-alloc the
/// kernel's first-fit lands at a different offset than the spec's.
#[test]
fn mpl_coalescing_off_by_one_diverges() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::MplCreate {
            id: mpl(1),
            size: 64,
            pri_order: false,
        },
        ObsEvent::MplTake {
            id: mpl(1),
            tid: t(1),
            size: 16,
            off: 0,
        },
        ObsEvent::MplTake {
            id: mpl(1),
            tid: t(1),
            size: 16,
            off: 16,
        },
        ObsEvent::MplRel { id: mpl(1), off: 0 },
        ObsEvent::MplRel {
            id: mpl(1),
            off: 16,
        },
        // Fully coalesced arena: a 32-byte request must land at 0. A
        // kernel whose coalescer lost bytes allocates past the seam.
        ObsEvent::MplTake {
            id: mpl(1),
            tid: t(1),
            size: 32,
            off: 36,
        },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("first-fit mandates offset 0"), "{d}");
}

/// A suspended task must leave the dispatchable set: dispatching it is
/// the signature of a kernel that lost the suspend in its scheduler.
#[test]
fn dispatching_a_suspended_task_diverges() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        // tsk1's wait completes while suspended: it becomes SUSPENDED,
        // not READY...
        ObsEvent::Suspend { tid: t(1) },
        ObsEvent::SemSignal { id: sem(1), cnt: 1 },
        ObsEvent::Wakeup {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 1),
            code: WakeCode::Ok,
        },
        ObsEvent::Preempt { tid: t(2) },
        // ...so dispatching it without a resume is a spec violation.
        ObsEvent::Dispatch { tid: t(1), pri: 10 },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(
        d.detail.contains("tsk2") || d.detail.contains("empty"),
        "{d}"
    );
}

/// Suspend-count nesting: one resume of a twice-suspended task must
/// not make it dispatchable.
#[test]
fn single_resume_of_nested_suspend_stays_suspended() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Preempt { tid: t(1) },
        ObsEvent::Suspend { tid: t(1) },
        ObsEvent::Suspend { tid: t(1) },
        ObsEvent::Resume {
            tid: t(1),
            force: false,
        },
        // Still suspended (count 1): the head of the ready queue is
        // tsk2, so dispatching tsk1 diverges.
        ObsEvent::Dispatch { tid: t(1), pri: 10 },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("tsk2"), "{d}");
    // A forced resume clears all nesting in one call: the same prefix
    // with tk_frsm_tsk is accepted.
    let mut evs = prologue();
    evs.extend([
        ObsEvent::Preempt { tid: t(1) },
        ObsEvent::Suspend { tid: t(1) },
        ObsEvent::Suspend { tid: t(1) },
        ObsEvent::Resume {
            tid: t(1),
            force: true,
        },
        ObsEvent::Dispatch { tid: t(1), pri: 10 },
    ]);
    let v = check(&evs);
    assert!(v.divergence.is_none(), "{:?}", v.divergence);
}

/// No dispatch or preemption may be observed inside a
/// `tk_dis_dsp`/`tk_loc_cpu` window.
#[test]
fn dispatch_inside_disabled_window_diverges() {
    let mut evs = prologue();
    evs.extend([
        ObsEvent::DispCtl { disabled: true },
        ObsEvent::TaskCreate { tid: t(3), pri: 5 },
        ObsEvent::TaskStart { tid: t(3) },
        ObsEvent::Preempt { tid: t(1) },
        ObsEvent::Dispatch { tid: t(3), pri: 5 },
    ]);
    let v = check(&evs);
    let d = v.divergence.expect("must diverge");
    assert!(d.detail.contains("dispatch-disabled window"), "{d}");
    // The same preemption after the window closes is accepted.
    let mut evs = prologue();
    evs.extend([
        ObsEvent::DispCtl { disabled: true },
        ObsEvent::TaskCreate { tid: t(3), pri: 5 },
        ObsEvent::TaskStart { tid: t(3) },
        ObsEvent::DispCtl { disabled: false },
        ObsEvent::Preempt { tid: t(1) },
        ObsEvent::Dispatch { tid: t(3), pri: 5 },
    ]);
    let v = check(&evs);
    assert!(v.divergence.is_none(), "{:?}", v.divergence);
}

/// A cyclic handler must fire exactly at its armed tick and re-arm one
/// period on; schedule drift is rejected.
#[test]
fn cyclic_schedule_drift_diverges() {
    fn cyc_evs(second_fire: u64) -> Vec<ObsEvent> {
        let mut evs = prologue();
        evs.extend([
            ObsEvent::CycCreate {
                id: CycId::from_raw(1),
                period_ticks: 5,
                first_tick: Some(3),
            },
            ObsEvent::CycFire {
                id: CycId::from_raw(1),
                tick: 3,
            },
            ObsEvent::CycFire {
                id: CycId::from_raw(1),
                tick: second_fire,
            },
        ]);
        evs
    }
    let v = check(&cyc_evs(8));
    assert!(v.divergence.is_none(), "{:?}", v.divergence);
    let d = check(&cyc_evs(9)).divergence.expect("must diverge");
    assert!(d.detail.contains("armed it for tick 8"), "{d}");
}

/// A forced wait release (`tk_rel_wai`) mandates the victim's
/// `E_RLWAI` wakeup and the re-serve of waiters it was holding back.
#[test]
fn rel_wai_mandates_release_and_reserve() {
    let mut evs = prologue();
    evs.extend([
        // tsk1 wants 3 counts, tsk2 wants 1; the count (2) covers only
        // the second request, which queues behind the first.
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 3),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::SemSignal { id: sem(1), cnt: 2 },
        ObsEvent::Block {
            tid: t(2),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        // Releasing the head waiter makes tsk2 satisfiable: the spec
        // mandates tsk1's Released wakeup, then tsk2's Ok wakeup.
        ObsEvent::RelWai { tid: t(1) },
        ObsEvent::Wakeup {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 3),
            code: WakeCode::Released,
        },
        ObsEvent::Wakeup {
            tid: t(2),
            obj: WaitObj::Sem(sem(1), 1),
            code: WakeCode::Ok,
        },
        ObsEvent::Dispatch { tid: t(1), pri: 10 },
    ]);
    let v = check(&evs);
    assert!(v.divergence.is_none(), "{:?}", v.divergence);
    // Dropping the re-serve wakeup (the pre-fix kernel behaviour)
    // leaves the mandate outstanding, which the checker reports.
    let mut evs2 = prologue();
    evs2.extend([
        ObsEvent::Block {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 3),
            deadline_tick: None,
        },
        ObsEvent::Dispatch { tid: t(2), pri: 20 },
        ObsEvent::SemSignal { id: sem(1), cnt: 2 },
        ObsEvent::Block {
            tid: t(2),
            obj: WaitObj::Sem(sem(1), 1),
            deadline_tick: None,
        },
        ObsEvent::RelWai { tid: t(1) },
        ObsEvent::Wakeup {
            tid: t(1),
            obj: WaitObj::Sem(sem(1), 3),
            code: WakeCode::Released,
        },
        ObsEvent::Dispatch { tid: t(1), pri: 10 },
    ]);
    let d = check(&evs2).divergence.expect("must diverge");
    assert!(d.detail.contains("mandates wakeup of tsk2"), "{d}");
}

/// Soundness over the real kernel: one representative seed per
/// topology replays clean, and actually exercises the oracle.
#[test]
// Live kernel execution (coroutine context switches): outside what
// Miri can interpret; the synthetic-stream tests above cover the
// oracle itself under Miri.
#[cfg_attr(miri, ignore)]
fn real_scenarios_replay_clean_through_the_oracle() {
    let tuning = Tuning {
        quick: true,
        faults: true,
    };
    let mut seen = std::collections::BTreeSet::new();
    for seed in 0..512 {
        let spec = ScenarioSpec::generate(seed, &tuning);
        if !seen.insert(spec.topology.label()) {
            continue;
        }
        let out = run_scenario_checked(&spec, true);
        assert!(
            out.divergence.is_none(),
            "seed {seed} ({}): {:?}",
            spec.topology.label(),
            out.divergence
        );
        assert!(out.oracle_events > 0, "seed {seed} recorded no events");
    }
    assert_eq!(
        seen.len(),
        Topology::ALL_LABELS.len(),
        "topology coverage shrank: {seen:?}"
    );
}

/// The mutex topologies specifically must put inheritance/ceiling
/// boosts on the wire (the oracle verifies priority at every dispatch,
/// so a scenario where boosts never happen would verify nothing).
#[test]
#[cfg_attr(miri, ignore)] // live kernel execution, see above
fn mutex_scenarios_exercise_contention() {
    let tuning = Tuning {
        quick: true,
        faults: false,
    };
    let mut checked = 0u64;
    for seed in 0..512 {
        let spec = ScenarioSpec::generate(seed, &tuning);
        if !matches!(spec.topology, Topology::MtxChain { .. }) {
            continue;
        }
        let out = run_scenario_checked(&spec, true);
        assert!(
            out.divergence.is_none(),
            "seed {seed}: {:?}",
            out.divergence
        );
        checked += out.oracle_events;
        if checked > 10_000 {
            return;
        }
    }
    assert!(checked > 0, "no mutex scenario in the first 512 seeds");
}
