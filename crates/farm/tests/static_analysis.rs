//! Static analyzer properties the campaign relies on:
//!
//! 1. **Determinism** — analysis records (verdicts, bounds, rendered
//!    summaries) are byte-identical across worker-thread counts and
//!    process runtimes, like everything else digest-adjacent.
//! 2. **Mutation sensitivity** — deleting an analysis term (blocking,
//!    interference) must flip a pinned verdict AND get convicted by the
//!    dynamic cross-check. This is the evidence that the analyzer's
//!    certificates are falsifiable rather than vacuously agreeable: a
//!    weakened analyzer certifies scenarios the kernel then visibly
//!    breaks, and `--analyze` turns that into a campaign failure.
//!
//! The pinned seeds were found by scanning `quick`+faults seeds for
//! verdict flips; they are regression anchors, so a generator change
//! that re-maps seeds should re-pin them (see docs/STATIC_ANALYSIS.md).

use rtk_analysis::static_verify::{AnalysisOptions, Verdict};
use rtk_farm::{
    analyze_spec, run_campaign, run_scenario_analyzed, verify_outcome, CampaignConfig,
    CampaignReport, ScenarioSpec, Tuning,
};
use sysc::Runtime;

fn quick() -> Tuning {
    Tuning {
        quick: true,
        faults: true,
    }
}

/// Analyzer verdicts and contradiction records are a pure function of
/// the seed: 1 worker vs 4, threaded vs coroutine runtime, all four
/// campaigns must produce identical analysis records and byte-identical
/// report JSON (the analysis block included).
#[test]
fn analysis_records_are_thread_and_runtime_invariant() {
    let cfg = |threads, runtime| CampaignConfig {
        base_seed: 40,
        seeds: 12,
        threads,
        tuning: quick(),
        oracle: false,
        topology: None,
        runtime,
        trace: None,
        analyze: true,
    };
    let reports: Vec<CampaignReport> = [
        cfg(1, Runtime::Threaded),
        cfg(4, Runtime::Threaded),
        cfg(1, Runtime::Coro),
        cfg(4, Runtime::Coro),
    ]
    .into_iter()
    .map(|c| CampaignReport::new(c.clone(), run_campaign(&c)))
    .collect();

    let baseline_records = reports[0].analysis_records();
    let baseline_json = reports[0].to_json();
    assert_eq!(baseline_records.len(), 12);
    for r in &reports[1..] {
        assert_eq!(r.analysis_records(), baseline_records);
        assert_eq!(r.to_json(), baseline_json);
    }
    // And the healthy analyzer survives its own cross-check.
    for rec in &baseline_records {
        assert!(
            rec.consistent(),
            "seed {}: {:?}",
            rec.seed,
            rec.contradictions
        );
    }
}

/// Runs one pinned mutation-sensitivity case: the healthy analyzer
/// refutes the seed, the mutated one certifies it, and the dynamic run
/// convicts the mutant while leaving the healthy verdict consistent.
fn assert_mutant_convicted(seed: u64, mutate: fn(&mut AnalysisOptions), expect: &str) {
    let spec = ScenarioSpec::generate(seed, &quick());
    let healthy = analyze_spec(&spec, &AnalysisOptions::default());
    assert_eq!(
        healthy.schedulable,
        Verdict::Refuted,
        "seed {seed} must be refuted by the full analysis: {}",
        healthy.summary()
    );

    let mut opts = AnalysisOptions::default();
    mutate(&mut opts);
    let mutated = analyze_spec(&spec, &opts);
    assert_eq!(
        mutated.schedulable,
        Verdict::Certified,
        "the mutation must flip seed {seed} to certified: {}",
        mutated.summary()
    );

    let out = run_scenario_analyzed(&spec, false, Runtime::default(), None);
    let healthy_rec = verify_outcome(&spec, &healthy, &out);
    assert!(
        healthy_rec.consistent(),
        "healthy verdict must survive dynamics: {:?}",
        healthy_rec.contradictions
    );
    let mutated_rec = verify_outcome(&spec, &mutated, &out);
    assert!(
        !mutated_rec.consistent(),
        "the mutant's certificate must be dynamically convicted (seed {seed})"
    );
    assert!(
        mutated_rec
            .contradictions
            .iter()
            .any(|c| c.contains(expect)),
        "expected a contradiction mentioning {expect:?}, got {:?}",
        mutated_rec.contradictions
    );
}

/// Mutation 1: drop the preemption/interference term from the RTA
/// recurrence. Pinned seed 94 (flag_barrier) then certifies — and the
/// kernel observably misses post-warmup deadlines.
#[test]
fn dropping_interference_term_is_dynamically_convicted() {
    assert_mutant_convicted(94, |o| o.ignore_interference = true, "deadline miss");
}

/// Mutation 2: zero all blocking bounds. Pinned seed 70 (sem_chain)
/// then certifies — and the kernel observably misses post-warmup
/// deadlines under the real semaphore inversion window.
#[test]
fn dropping_blocking_term_is_dynamically_convicted() {
    assert_mutant_convicted(70, |o| o.ignore_blocking = true, "deadline miss");
}
