//! Farm determinism properties: the whole value of a seeded campaign
//! rests on `seed ⇒ scenario ⇒ outcome` being a pure function,
//! independent of worker-thread count and scheduling.

use proptest::prelude::*;
use rtk_farm::{
    run_campaign, run_exploration, run_scenario, run_scenario_observed, CampaignConfig,
    CampaignReport, ExploreConfig, Family, ScenarioSpec, Tuning,
};
use sysc::Runtime;

fn quick(faults: bool) -> Tuning {
    Tuning {
        quick: true,
        faults,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    /// Same seed ⇒ identical expanded scenario and identical digest,
    /// for both fault settings.
    fn spec_expansion_is_pure(seed in 0u64..1_000_000, faults in any::<bool>()) {
        let t = quick(faults);
        let a = ScenarioSpec::generate(seed, &t);
        let b = ScenarioSpec::generate(seed, &t);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a, b);
    }
}

proptest! {
    // Each case runs two full kernel simulations; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    /// Same scenario ⇒ identical measured outcome (latency vector,
    /// counters, kernel stats), run-to-run.
    fn scenario_outcome_is_reproducible(seed in 0u64..10_000) {
        let spec = ScenarioSpec::generate(seed, &quick(true));
        let a = run_scenario(&spec);
        let b = run_scenario(&spec);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.latencies_us, b.latencies_us);
        prop_assert_eq!(a.stats, b.stats);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    /// A campaign over a fixed seed window produces the identical
    /// aggregate digest and byte-identical JSON with 1 worker and with
    /// N workers.
    fn campaign_is_thread_count_invariant(
        base in 0u64..50_000,
        nseeds in 3u64..10,
        threads in 2usize..5,
    ) {
        let cfg1 = CampaignConfig {
            base_seed: base,
            seeds: nseeds,
            threads: 1,
            tuning: quick(true),
            oracle: true,
            topology: None,
            runtime: Runtime::default(),
            trace: None,
            analyze: false,
        };
        let cfgn = CampaignConfig { threads, ..cfg1.clone() };

        let r1 = CampaignReport::new(cfg1.clone(), run_campaign(&cfg1));
        let rn = CampaignReport::new(cfgn.clone(), run_campaign(&cfgn));
        prop_assert_eq!(r1.digest(), rn.digest());
        // The config echoed in the JSON provenance block must not leak
        // the thread count (it would break byte-identity).
        prop_assert_eq!(r1.to_json(), rn.to_json());
    }
}

#[test]
fn campaign_json_is_stable_across_repeated_runs() {
    let cfg = CampaignConfig {
        base_seed: 42,
        seeds: 8,
        threads: 3,
        tuning: quick(true),
        oracle: true,
        topology: None,
        runtime: Runtime::default(),
        trace: None,
        analyze: false,
    };
    let a = CampaignReport::new(cfg.clone(), run_campaign(&cfg)).to_json();
    let b = CampaignReport::new(cfg.clone(), run_campaign(&cfg)).to_json();
    assert_eq!(a, b);
}

/// The process runtime (pooled OS threads vs stackful coroutines) is
/// pure host mechanics: the same seed window must yield a byte-identical
/// report under both.
#[test]
fn campaign_report_is_runtime_invariant() {
    let cfg = |runtime| CampaignConfig {
        base_seed: 500,
        seeds: 12,
        threads: 2,
        tuning: quick(true),
        oracle: true,
        topology: None,
        runtime,
        trace: None,
        analyze: false,
    };
    let threaded = cfg(Runtime::Threaded);
    let coro = cfg(Runtime::Coro);
    let rt = CampaignReport::new(threaded.clone(), run_campaign(&threaded));
    let rc = CampaignReport::new(coro.clone(), run_campaign(&coro));
    assert_eq!(rt.digest(), rc.digest());
    assert_eq!(rt.to_json(), rc.to_json());
}

/// The `--explore` walk is a pure function of its config: the
/// canonical state hash and the *entire report* (JSON bytes) must not
/// depend on the host runtime backing the cross-execution, nor on any
/// thread-count setting (exploration is single-walker by construction;
/// this pins that `--threads` can never leak into the report).
#[test]
fn explore_report_is_runtime_and_thread_invariant() {
    for family in [Family::Mtx, Family::Irq, Family::Chain, Family::Deadlock] {
        let cfg = ExploreConfig {
            family,
            ..ExploreConfig::default()
        };
        let threaded = run_exploration(&cfg, Runtime::Threaded);
        let coro = run_exploration(&cfg, Runtime::Coro);
        assert_eq!(
            threaded.report.state_hash, coro.report.state_hash,
            "{family}: canonical state hash must be runtime-invariant"
        );
        assert_eq!(
            threaded.report.to_json(),
            coro.report.to_json(),
            "{family}: explore report must be byte-identical across runtimes"
        );
        // Counterexample distillation is part of the determinism
        // contract too: same violations, same events, same order.
        assert_eq!(
            threaded.counterexamples.len(),
            coro.counterexamples.len(),
            "{family}"
        );
        for (a, b) in threaded.counterexamples.iter().zip(&coro.counterexamples) {
            assert_eq!(a.name, b.name, "{family}");
            assert_eq!(a.events, b.events, "{family}: {} diverged", a.name);
        }
    }
}

/// Stronger than digest equality: under both runtimes the kernel makes
/// the *same decisions in the same order* — the per-seed observation
/// streams (every dispatch, wakeup and sync operation) are identical
/// event for event.
#[test]
fn obs_streams_are_identical_across_runtimes() {
    for seed in [3u64, 17, 42, 100, 257] {
        let spec = ScenarioSpec::generate(seed, &quick(true));
        let (out_t, obs_t) = run_scenario_observed(&spec, Runtime::Threaded);
        let (out_c, obs_c) = run_scenario_observed(&spec, Runtime::Coro);
        assert_eq!(out_t.digest(), out_c.digest(), "seed {seed}");
        assert!(!obs_t.is_empty(), "seed {seed} recorded no events");
        assert_eq!(obs_t.len(), obs_c.len(), "seed {seed}");
        for (i, (a, b)) in obs_t.iter().zip(&obs_c).enumerate() {
            assert_eq!(a, b, "seed {seed}, event {i}");
        }
    }
}
