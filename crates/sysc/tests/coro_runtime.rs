//! Coroutine-runtime-specific lifecycle tests: stack recycling across
//! the panic and terminate paths, never-started processes, kill from
//! inside another process body, nested simulations on one OS thread,
//! and `Runtime` selection/parsing.
//!
//! (Runtime-agnostic stress coverage lives in `handoff_stress.rs`;
//! these tests pin behavior that only exists under `Runtime::Coro`.)

#![cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sysc::{RunOutcome, Runtime, SimTime, Simulation, SpawnMode};

#[test]
fn runtime_parsing_and_default() {
    assert_eq!("coro".parse::<Runtime>().unwrap(), Runtime::Coro);
    assert_eq!("threaded".parse::<Runtime>().unwrap(), Runtime::Threaded);
    let err = "fibers".parse::<Runtime>().unwrap_err();
    assert!(
        err.contains("fibers"),
        "error should name the bad value: {err}"
    );
    assert_eq!(Runtime::default(), Runtime::Coro);
    assert!(sysc::runtime::coro_supported());
    assert_eq!(Runtime::Coro.resolve(), Runtime::Coro);

    let sim = Simulation::new();
    assert_eq!(sim.runtime(), Runtime::Coro);
    let sim = Simulation::with_runtime(Runtime::Threaded);
    assert_eq!(sim.runtime(), Runtime::Threaded);
}

/// A panic mid-scenario must give the panicked process's stack back to
/// the pool (the unwind travels through the coroutine switch, so a bug
/// here leaks 512 KiB per poisoned seed).
#[test]
fn panicked_process_stack_is_recycled() {
    let before = sysc::runtime::stack_stats();
    for _ in 0..10 {
        let result = std::panic::catch_unwind(|| {
            let mut sim = Simulation::with_runtime(Runtime::Coro);
            let h = sim.handle();
            h.spawn_thread("bystander", SpawnMode::Immediate, |ctx| {
                ctx.wait_time(SimTime::from_ms(10));
            });
            h.spawn_thread("bomb", SpawnMode::Immediate, |ctx| {
                ctx.wait_time(SimTime::from_us(1));
                panic!("boom in coroutine");
            });
            sim.run_to_completion();
        });
        assert!(result.is_err());
    }
    let after = sysc::runtime::stack_stats();
    let leased = after.leases - before.leases;
    let recycled = after.recycled - before.recycled;
    // Every lease this loop took must have been returned: the bomb's
    // stack through the panic reply path, the bystander's through
    // terminate-on-drop. Concurrent tests can only add recycles.
    assert!(
        recycled >= leased,
        "leaked stacks: {leased} leased, {recycled} recycled"
    );
}

/// Terminating a process that was spawned but never dispatched must not
/// lease a stack at all, and must not leak the parked entry closure
/// (which owns a self-referential Arc).
#[test]
fn never_started_process_is_terminated_without_a_stack() {
    struct CountDrop(Arc<AtomicU64>);
    impl Drop for CountDrop {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }
    let drops = Arc::new(AtomicU64::new(0));
    let before = sysc::runtime::stack_stats();
    {
        let mut sim = Simulation::with_runtime(Runtime::Coro);
        let h = sim.handle();
        let never = h.create_event("never");
        let d = CountDrop(Arc::clone(&drops));
        h.spawn_thread("dormant", SpawnMode::WaitEvent(never), move |_ctx| {
            let _guard = d;
            unreachable!("the event never fires");
        });
        assert_eq!(sim.run_to_completion(), RunOutcome::Starved);
        // Drop terminates the dormant process before it ever ran.
    }
    assert_eq!(
        drops.load(Ordering::SeqCst),
        1,
        "captured state must be dropped"
    );
    let after = sysc::runtime::stack_stats();
    assert_eq!(
        after.leases, before.leases,
        "no stack for a never-started process"
    );
}

/// One process killing another mid-wait: the terminate handshake runs
/// coroutine-to-coroutine (the killer, not the kernel root, is the
/// resumer) and control must return to the killer afterwards.
#[test]
fn kill_from_inside_another_process() {
    let log = Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut sim = Simulation::with_runtime(Runtime::Coro);
    let h = sim.handle();
    let log2 = Arc::clone(&log);
    let victim = h.spawn_thread("victim", SpawnMode::Immediate, move |ctx| {
        log2.lock().unwrap().push("victim-start");
        loop {
            ctx.wait_time(SimTime::from_us(1));
        }
    });
    let log3 = Arc::clone(&log);
    h.spawn_thread("killer", SpawnMode::Immediate, move |ctx| {
        ctx.wait_time(SimTime::from_us(5));
        log3.lock().unwrap().push("kill");
        ctx.handle().kill(victim);
        assert!(ctx.handle().is_finished(victim));
        log3.lock().unwrap().push("after-kill");
        ctx.wait_time(SimTime::from_us(5));
        log3.lock().unwrap().push("killer-done");
    });
    assert_eq!(sim.run_to_completion(), RunOutcome::Starved);
    assert_eq!(
        *log.lock().unwrap(),
        vec!["victim-start", "kill", "after-kill", "killer-done"]
    );
}

/// A process body driving a nested, independent simulation on the same
/// OS thread: two live `CoroRt`s must not clobber each other's notion
/// of the current context.
#[test]
fn nested_simulation_inside_a_coroutine() {
    let mut outer = Simulation::with_runtime(Runtime::Coro);
    let h = outer.handle();
    let result = Arc::new(AtomicU64::new(0));
    let result2 = Arc::clone(&result);
    h.spawn_thread("outer", SpawnMode::Immediate, move |ctx| {
        ctx.wait_time(SimTime::from_us(1));
        let mut inner = Simulation::with_runtime(Runtime::Coro);
        let ih = inner.handle();
        let r = Arc::clone(&result2);
        ih.spawn_thread("inner", SpawnMode::Immediate, move |ictx| {
            for _ in 0..10 {
                ictx.wait_time(SimTime::from_ns(100));
            }
            r.store(ictx.now().as_ns(), Ordering::SeqCst);
        });
        assert_eq!(inner.run_to_completion(), RunOutcome::Starved);
        // Back in the outer coroutine: its own clock is untouched.
        ctx.wait_time(SimTime::from_us(1));
        assert_eq!(ctx.now(), SimTime::from_us(2));
    });
    assert_eq!(outer.run_to_completion(), RunOutcome::Starved);
    assert_eq!(result.load(Ordering::SeqCst), 1_000);
}

/// Heavy process churn within one simulation: spawn-run-finish cycles
/// must plateau at a small number of distinct stacks.
#[test]
fn sequential_process_churn_reuses_stacks() {
    let before = sysc::runtime::stack_stats();
    let mut sim = Simulation::with_runtime(Runtime::Coro);
    let h = sim.handle();
    let total = Arc::new(AtomicU64::new(0));
    for i in 0..200 {
        let t = Arc::clone(&total);
        h.spawn_thread("worker", SpawnMode::Immediate, move |ctx| {
            ctx.wait_time(SimTime::from_ns(10 + i));
            t.fetch_add(1, Ordering::Relaxed);
        });
        sim.run_to_completion();
    }
    assert_eq!(total.load(Ordering::Relaxed), 200);
    let after = sysc::runtime::stack_stats();
    assert_eq!(after.leases - before.leases, 200);
    assert!(
        after.stacks_allocated - before.stacks_allocated <= 4,
        "churn should reuse stacks, allocated {} fresh ones",
        after.stacks_allocated - before.stacks_allocated
    );
}
