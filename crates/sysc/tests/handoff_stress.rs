//! Stress and lifecycle tests of the handoff machinery, exercised
//! through the public `Simulation` API and parametrized over **both**
//! process runtimes (pooled OS threads with the lock-free baton, and
//! single-thread stackful coroutines): panic-in-process, terminate-
//! then-reuse, chained dispatch under many-process churn, drop with
//! parked processes, and the fast-forward run budget.
//!
//! (Protocol-level tests — spurious-unpark injection, the double-resume
//! assertion — live next to the baton implementation in
//! `sysc::process`; coroutine stack-pool mechanics live in
//! `sysc::runtime`.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sysc::{RunOutcome, Runtime, SimTime, Simulation, SpawnMode};

const BOTH: [Runtime; 2] = [Runtime::Threaded, Runtime::Coro];

/// A two-process ping-pong with `rounds` baton handoffs per side.
fn pingpong(rt: Runtime, rounds: u64) -> Simulation {
    let mut sim = Simulation::with_runtime(rt);
    let h = sim.handle();
    let ping = h.create_event("ping");
    let pong = h.create_event("pong");
    h.spawn_thread("a", SpawnMode::Immediate, move |ctx| {
        for _ in 0..rounds {
            ctx.handle().notify_after(ping, SimTime::from_ns(10));
            ctx.wait_event(pong);
        }
    });
    let h2 = sim.handle();
    h2.spawn_thread("b", SpawnMode::WaitEvent(ping), move |ctx| loop {
        ctx.handle().notify(pong);
        ctx.wait_event(ping);
    });
    assert_eq!(sim.run_to_completion(), RunOutcome::Starved);
    sim
}

#[test]
fn chained_handoff_is_deterministic_over_many_rounds() {
    for rt in BOTH {
        let sim = pingpong(rt, 20_000);
        assert_eq!(sim.now(), SimTime::from_ns(10 * 20_000), "runtime {rt}");
    }
}

/// A panicking process body must surface through `run_until`, and the
/// backing context (pool worker or coroutine stack) must serve later
/// simulations cleanly.
#[test]
fn panic_in_process_propagates_and_runtime_recovers() {
    for rt in BOTH {
        for round in 0..20 {
            let result = std::panic::catch_unwind(|| {
                let mut sim = Simulation::with_runtime(rt);
                let h = sim.handle();
                h.spawn_thread("bomb", SpawnMode::Immediate, move |ctx| {
                    ctx.wait_time(SimTime::from_us(3));
                    panic!("deliberate process panic");
                });
                sim.run_to_completion();
            });
            let payload = result.expect_err("process panic must propagate");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or_default()
                .to_string();
            assert!(
                msg.contains("deliberate"),
                "{rt} round {round}: got {msg:?}"
            );

            // The same runtime serves the follow-up simulation; a
            // poisoned worker/stack or leaked protocol state would
            // break it.
            let sim = pingpong(rt, 50);
            assert_eq!(sim.now(), SimTime::from_ns(500));
        }
    }
}

/// Kill (cooperative terminate) followed by fresh simulations reusing
/// the recycled contexts: a recycled context must never observe the
/// previous occupant's protocol state.
#[test]
fn terminate_then_reuse_of_recycled_contexts() {
    for rt in BOTH {
        for _ in 0..50 {
            let mut sim = Simulation::with_runtime(rt);
            let h = sim.handle();
            let tick = h.create_event("tick");
            h.make_periodic(tick, SimTime::from_us(1), SimTime::from_us(1));
            let victim = h.spawn_thread("victim", SpawnMode::Immediate, move |ctx| loop {
                ctx.wait_event(tick);
            });
            sim.run_until(SimTime::from_us(5));
            h.kill(victim);
            assert!(h.is_finished(victim));
            // Dropping the simulation terminates the remaining
            // machinery; workers/stacks are recycled.
            drop(sim);

            let sim = pingpong(rt, 20);
            assert_eq!(sim.now(), SimTime::from_ns(200));
        }
    }
}

/// The threaded runtime must recycle pool workers across simulations
/// instead of spawning a thread per process.
#[test]
fn threaded_runtime_recycles_pool_workers() {
    let spawned_before = sysc::pool::stats().threads_spawned;
    for _ in 0..50 {
        let mut sim = Simulation::with_runtime(Runtime::Threaded);
        let h = sim.handle();
        let tick = h.create_event("tick");
        h.make_periodic(tick, SimTime::from_us(1), SimTime::from_us(1));
        let victim = h.spawn_thread("victim", SpawnMode::Immediate, move |ctx| loop {
            ctx.wait_event(tick);
        });
        sim.run_until(SimTime::from_us(5));
        h.kill(victim);
        drop(sim);
        let sim = pingpong(Runtime::Threaded, 20);
        assert_eq!(sim.now(), SimTime::from_ns(200));
    }
    let s = sysc::pool::stats();
    // 50 iterations x 3 processes: without recycling this would have
    // spawned ~150 threads. Other tests share the global pool, so only
    // assert substantial reuse, not exact counts.
    assert!(
        s.threads_spawned - spawned_before < 50,
        "pool recycled too little: {} new threads",
        s.threads_spawned - spawned_before
    );
    assert!(s.jobs_recycled > 0);
}

/// The coroutine runtime must recycle heap stacks the same way the
/// threaded runtime recycles workers.
#[test]
fn coro_runtime_recycles_stacks() {
    let before = sysc::runtime::stack_stats();
    for _ in 0..50 {
        let sim = pingpong(Runtime::Coro, 20);
        assert_eq!(sim.now(), SimTime::from_ns(200));
    }
    let after = sysc::runtime::stack_stats();
    assert_eq!(after.leases - before.leases, 100, "two stacks per sim");
    // Other tests share the global stack pool, so only assert
    // substantial reuse, not exact counts.
    assert!(
        after.stacks_allocated - before.stacks_allocated < 50,
        "stack pool recycled too little: {} fresh allocations",
        after.stacks_allocated - before.stacks_allocated
    );
    assert!(after.recycled > before.recycled);
}

/// Drop with processes parked mid-wait (never terminated explicitly):
/// teardown must unwind them synchronously and release their contexts.
#[test]
fn drop_midwait_releases_contexts() {
    struct CountDrop(Arc<AtomicU64>);
    impl Drop for CountDrop {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    for rt in BOTH {
        let drops = Arc::new(AtomicU64::new(0));
        for _ in 0..25 {
            let mut sim = Simulation::with_runtime(rt);
            let h = sim.handle();
            let d = CountDrop(Arc::clone(&drops));
            h.spawn_thread("parked", SpawnMode::Immediate, move |ctx| {
                let _guard = d;
                loop {
                    ctx.wait_time(SimTime::from_ms(1));
                }
            });
            sim.run_until(SimTime::from_us(100));
            // Drop without terminating: the Drop impl inside the body
            // must still run (cooperative unwind through the runtime).
        }
        assert_eq!(drops.load(Ordering::SeqCst), 25, "runtime {rt}");
    }
}

/// Many concurrent simulations on separate OS threads, all leasing
/// from the same global pools: exercises cross-simulation context churn
/// (and, for threaded, the spin-then-park slow path under
/// oversubscription).
#[test]
fn concurrent_simulations_share_the_global_pools() {
    for rt in BOTH {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        let sim = pingpong(rt, 200);
                        assert_eq!(sim.now(), SimTime::from_ns(2_000));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}

/// The fast-forward run budget must leave behavior identical: a solo
/// time-slicing process interleaved with a timed event observes the
/// same schedule with and without an observer (tracing disables the
/// fast path, so both paths are exercised against each other).
#[test]
fn fast_forward_matches_engine_path() {
    fn run(rt: Runtime, traced: bool) -> (SimTime, u64, u64) {
        let mut sim = Simulation::with_runtime(rt);
        if traced {
            struct Null;
            impl sysc::Tracer for Null {}
            sim.set_tracer(Arc::new(Null));
        }
        let h = sim.handle();
        let tick = h.create_event("tick");
        h.make_periodic(tick, SimTime::from_us(7), SimTime::from_us(7));
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = Arc::clone(&hits);
        h.spawn_thread("slicer", SpawnMode::Immediate, move |ctx| {
            for _ in 0..1000 {
                ctx.wait_time(SimTime::from_us(1));
                hits2.fetch_add(1, Ordering::Relaxed);
            }
        });
        let outcome = sim.run_until(SimTime::from_ms(2));
        assert_eq!(outcome, RunOutcome::ReachedLimit);
        let fires = sim.handle().event_fire_count(tick);
        (sim.now(), hits.load(Ordering::Relaxed), fires)
    }
    let mut observed = Vec::new();
    for rt in BOTH {
        let fast = run(rt, false);
        let slow = run(rt, true);
        assert_eq!(fast, slow, "runtime {rt}");
        observed.push(fast);
    }
    // And across runtimes.
    assert_eq!(observed[0], observed[1]);
}

/// wait_event_timeout with no possible firing source must fast-forward
/// to the timeout; with a pending notification inside the window it
/// must take the engine path and report the firing.
#[test]
fn event_timeout_fast_path_respects_pending_notifications() {
    for rt in BOTH {
        let mut sim = Simulation::with_runtime(rt);
        let h = sim.handle();
        let e = h.create_event("e");
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        h.spawn_thread("w", SpawnMode::Immediate, move |ctx| {
            // Nothing can fire `e`: fast-forwarded timeout.
            let r1 = ctx.wait_event_timeout(e, SimTime::from_us(5));
            log2.lock().unwrap().push((format!("{r1:?}"), ctx.now()));
            // A pending notification lands inside the window: must fire.
            ctx.handle().notify_after(e, SimTime::from_us(2));
            let r2 = ctx.wait_event_timeout(e, SimTime::from_us(10));
            log2.lock().unwrap().push((format!("{r2:?}"), ctx.now()));
            // And one landing after the window: times out at the deadline.
            ctx.handle().notify_after(e, SimTime::from_us(50));
            let r3 = ctx.wait_event_timeout(e, SimTime::from_us(10));
            log2.lock().unwrap().push((format!("{r3:?}"), ctx.now()));
        });
        sim.run_to_completion();
        let log = log.lock().unwrap().clone();
        assert_eq!(
            log,
            vec![
                ("TimedOut".to_string(), SimTime::from_us(5)),
                ("Fired".to_string(), SimTime::from_us(7)),
                ("TimedOut".to_string(), SimTime::from_us(17)),
            ],
            "runtime {rt}"
        );
    }
}
