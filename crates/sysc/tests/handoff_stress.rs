//! Stress and lifecycle tests of the lock-free baton handoff and the
//! pooled process runtime, exercised through the public `Simulation`
//! API: panic-in-process while pooled, terminate-then-reuse of pooled
//! workers, chained dispatch under many-process churn, and cross-thread
//! simulation traffic that keeps the pool's recycled workers busy.
//!
//! (Protocol-level tests — spurious-unpark injection, the double-resume
//! assertion — live next to the baton implementation in
//! `sysc::process`, where the rendezvous primitives are reachable.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sysc::{RunOutcome, SimTime, Simulation, SpawnMode};

/// A two-process ping-pong with `rounds` baton handoffs per side.
fn pingpong(rounds: u64) -> Simulation {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let ping = h.create_event("ping");
    let pong = h.create_event("pong");
    h.spawn_thread("a", SpawnMode::Immediate, move |ctx| {
        for _ in 0..rounds {
            ctx.handle().notify_after(ping, SimTime::from_ns(10));
            ctx.wait_event(pong);
        }
    });
    let h2 = sim.handle();
    h2.spawn_thread("b", SpawnMode::WaitEvent(ping), move |ctx| loop {
        ctx.handle().notify(pong);
        ctx.wait_event(ping);
    });
    assert_eq!(sim.run_to_completion(), RunOutcome::Starved);
    sim
}

#[test]
fn chained_handoff_is_deterministic_over_many_rounds() {
    let sim = pingpong(20_000);
    assert_eq!(sim.now(), SimTime::from_ns(10 * 20_000));
}

/// A panicking process body must surface through `run_until`, and the
/// pooled worker that hosted it must serve later simulations cleanly.
#[test]
fn panic_in_pooled_process_propagates_and_worker_recovers() {
    for round in 0..20 {
        let result = std::panic::catch_unwind(|| {
            let mut sim = Simulation::new();
            let h = sim.handle();
            h.spawn_thread("bomb", SpawnMode::Immediate, move |ctx| {
                ctx.wait_time(SimTime::from_us(3));
                panic!("deliberate process panic");
            });
            sim.run_to_completion();
        });
        let payload = result.expect_err("process panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_default()
            .to_string();
        assert!(msg.contains("deliberate"), "round {round}: got {msg:?}");

        // The same pool serves the follow-up simulation; a poisoned
        // worker or leaked baton state would break it.
        let sim = pingpong(50);
        assert_eq!(sim.now(), SimTime::from_ns(500));
    }
}

/// Kill (cooperative terminate) followed by fresh simulations reusing
/// the recycled workers: a recycled thread must never observe the
/// previous occupant's baton state.
#[test]
fn terminate_then_reuse_of_pooled_workers() {
    let spawned_before = sysc::pool::stats().threads_spawned;
    for _ in 0..50 {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let tick = h.create_event("tick");
        h.make_periodic(tick, SimTime::from_us(1), SimTime::from_us(1));
        let victim = h.spawn_thread("victim", SpawnMode::Immediate, move |ctx| loop {
            ctx.wait_event(tick);
        });
        sim.run_until(SimTime::from_us(5));
        h.kill(victim);
        assert!(h.is_finished(victim));
        // Dropping the simulation terminates the remaining machinery;
        // both workers re-enlist in the pool.
        drop(sim);

        let sim = pingpong(20);
        assert_eq!(sim.now(), SimTime::from_ns(200));
    }
    let s = sysc::pool::stats();
    // 50 iterations x 3 processes: without recycling this would have
    // spawned ~150 threads. Other tests share the global pool, so only
    // assert substantial reuse, not exact counts.
    assert!(
        s.threads_spawned - spawned_before < 50,
        "pool recycled too little: {} new threads",
        s.threads_spawned - spawned_before
    );
    assert!(s.jobs_recycled > 0);
}

/// Drop with processes parked mid-wait (never terminated explicitly):
/// teardown must unwind them synchronously and release their workers.
#[test]
fn drop_midwait_releases_workers() {
    struct CountDrop(Arc<AtomicU64>);
    impl Drop for CountDrop {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    let drops = Arc::new(AtomicU64::new(0));
    for _ in 0..25 {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let d = CountDrop(Arc::clone(&drops));
        h.spawn_thread("parked", SpawnMode::Immediate, move |ctx| {
            let _guard = d;
            loop {
                ctx.wait_time(SimTime::from_ms(1));
            }
        });
        sim.run_until(SimTime::from_us(100));
        // Drop without terminating: the Drop impl inside the body must
        // still run (cooperative unwind through the baton).
    }
    assert_eq!(drops.load(Ordering::SeqCst), 25);
}

/// Many concurrent simulations on separate OS threads, all leasing
/// from the same global pool: exercises cross-simulation worker churn
/// and the spin-then-park slow path under oversubscription.
#[test]
fn concurrent_simulations_share_the_pool() {
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..10 {
                    let sim = pingpong(200);
                    assert_eq!(sim.now(), SimTime::from_ns(2_000));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// The fast-forward run budget must leave behavior identical: a solo
/// time-slicing process interleaved with a timed event observes the
/// same schedule with and without an observer (tracing disables the
/// fast path, so both paths are exercised against each other).
#[test]
fn fast_forward_matches_engine_path() {
    fn run(traced: bool) -> (SimTime, u64, u64) {
        let mut sim = Simulation::new();
        if traced {
            struct Null;
            impl sysc::Tracer for Null {}
            sim.set_tracer(Arc::new(Null));
        }
        let h = sim.handle();
        let tick = h.create_event("tick");
        h.make_periodic(tick, SimTime::from_us(7), SimTime::from_us(7));
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = Arc::clone(&hits);
        h.spawn_thread("slicer", SpawnMode::Immediate, move |ctx| {
            for _ in 0..1000 {
                ctx.wait_time(SimTime::from_us(1));
                hits2.fetch_add(1, Ordering::Relaxed);
            }
        });
        let outcome = sim.run_until(SimTime::from_ms(2));
        assert_eq!(outcome, RunOutcome::ReachedLimit);
        let fires = sim.handle().event_fire_count(tick);
        (sim.now(), hits.load(Ordering::Relaxed), fires)
    }
    let fast = run(false);
    let slow = run(true);
    assert_eq!(fast, slow);
}

/// wait_event_timeout with no possible firing source must fast-forward
/// to the timeout; with a pending notification inside the window it
/// must take the engine path and report the firing.
#[test]
fn event_timeout_fast_path_respects_pending_notifications() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e = h.create_event("e");
    let log = Arc::new(std::sync::Mutex::new(Vec::new()));
    let log2 = Arc::clone(&log);
    h.spawn_thread("w", SpawnMode::Immediate, move |ctx| {
        // Nothing can fire `e`: fast-forwarded timeout.
        let r1 = ctx.wait_event_timeout(e, SimTime::from_us(5));
        log2.lock().unwrap().push((format!("{r1:?}"), ctx.now()));
        // A pending notification lands inside the window: must fire.
        ctx.handle().notify_after(e, SimTime::from_us(2));
        let r2 = ctx.wait_event_timeout(e, SimTime::from_us(10));
        log2.lock().unwrap().push((format!("{r2:?}"), ctx.now()));
        // And one landing after the window: times out at the deadline.
        ctx.handle().notify_after(e, SimTime::from_us(50));
        let r3 = ctx.wait_event_timeout(e, SimTime::from_us(10));
        log2.lock().unwrap().push((format!("{r3:?}"), ctx.now()));
    });
    sim.run_to_completion();
    let log = log.lock().unwrap().clone();
    assert_eq!(
        log,
        vec![
            ("TimedOut".to_string(), SimTime::from_us(5)),
            ("Fired".to_string(), SimTime::from_us(7)),
            ("TimedOut".to_string(), SimTime::from_us(17)),
        ]
    );
}
