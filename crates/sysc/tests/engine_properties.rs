//! Property-based tests of the discrete-event engine: temporal ordering,
//! determinism, and notification-rule invariants under random inputs.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use sysc::{RunOutcome, SimTime, Simulation, SpawnMode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Timed notifications fire in non-decreasing time order regardless
    /// of the order they were scheduled in, and every distinct event
    /// fires exactly once.
    #[test]
    fn timed_events_fire_in_time_order(delays in proptest::collection::vec(1u64..10_000, 1..40)) {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let fired: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        for (i, d) in delays.iter().enumerate() {
            let e = h.create_event(&format!("e{i}"));
            let f = Arc::clone(&fired);
            h.spawn_thread(&format!("w{i}"), SpawnMode::WaitEvent(e), move |ctx| {
                f.lock().unwrap().push((ctx.now().as_us(), i));
            });
            h.notify_after(e, SimTime::from_us(*d));
        }
        prop_assert_eq!(sim.run_to_completion(), RunOutcome::Starved);
        let fired = fired.lock().unwrap().clone();
        prop_assert_eq!(fired.len(), delays.len());
        // Times non-decreasing.
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "out of order: {w:?}");
        }
        // Each waiter woke at its own delay.
        for (t, i) in &fired {
            prop_assert_eq!(*t, delays[*i]);
        }
    }

    /// The engine is deterministic: the same random program produces the
    /// same execution log twice.
    #[test]
    fn random_programs_are_deterministic(
        procs in proptest::collection::vec((1u64..500, 1u8..5), 2..8),
    ) {
        fn run(procs: &[(u64, u8)]) -> Vec<String> {
            let mut sim = Simulation::new();
            let h = sim.handle();
            let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
            let sync = h.create_event("sync");
            for (i, (delay, rounds)) in procs.iter().enumerate() {
                let (delay, rounds) = (*delay, *rounds);
                let l = Arc::clone(&log);
                h.spawn_thread(&format!("p{i}"), SpawnMode::Immediate, move |ctx| {
                    for r in 0..rounds {
                        ctx.wait_time(SimTime::from_us(delay));
                        l.lock().unwrap().push(format!("p{i}r{r}@{}", ctx.now()));
                        if i == 0 {
                            ctx.handle().notify(sync);
                        }
                    }
                });
            }
            sim.run_to_completion();
            let out = log.lock().unwrap().clone();
            out
        }
        prop_assert_eq!(run(&procs), run(&procs));
    }

    /// The sc_event override rule: of several timed notifications on the
    /// SAME event, the earliest pending one wins and the event fires
    /// exactly once per notification "generation".
    #[test]
    fn earliest_pending_notification_wins(delays in proptest::collection::vec(1u64..1000, 2..12)) {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let e = h.create_event("e");
        let fired_at: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let f = Arc::clone(&fired_at);
        h.spawn_method("m", &[e], false, move |ctx| {
            f.lock().unwrap().push(ctx.now().as_us());
        });
        for d in &delays {
            h.notify_after(e, SimTime::from_us(*d));
        }
        sim.run_to_completion();
        let fired = fired_at.lock().unwrap().clone();
        let min = *delays.iter().min().unwrap();
        prop_assert_eq!(fired, vec![min]);
    }

    /// Periodic events tick exactly floor(horizon/period) times.
    #[test]
    fn periodic_events_tick_exactly(period_us in 10u64..500, horizon_ms in 1u64..20) {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let e = h.create_event("clk");
        h.make_periodic(e, SimTime::from_us(period_us), SimTime::from_us(period_us));
        sim.run_until(SimTime::from_ms(horizon_ms));
        let expected = SimTime::from_ms(horizon_ms) / SimTime::from_us(period_us);
        prop_assert_eq!(sim.handle().event_fire_count(e), expected);
    }

    /// The hierarchical timing wheel delivers exactly what a reference
    /// `(at, seq)`-ordered binary heap delivers — same entries, same
    /// order — under randomized interleavings of inserts and advances.
    #[test]
    fn wheel_matches_reference_heap(ops in proptest::collection::vec((0u64..50_000, 0u8..4), 1..200)) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut wheel: sysc::TimingWheel<u64> = sysc::TimingWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut due = Vec::new();

        let mut drain_to = |target: u64,
                            wheel: &mut sysc::TimingWheel<u64>,
                            heap: &mut BinaryHeap<Reverse<(u64, u64)>>|
         -> Result<(), TestCaseError> {
            let mut expect = Vec::new();
            while heap.peek().is_some_and(|Reverse((at, _))| *at <= target) {
                let Reverse(e) = heap.pop().expect("peeked");
                expect.push(e);
            }
            due.clear();
            wheel.advance_to(target, &mut due);
            let got: Vec<(u64, u64)> = due.iter().map(|e| (e.at, e.action)).collect();
            prop_assert_eq!(got, expect, "divergence advancing to {}", target);
            Ok(())
        };

        for (delay, kind) in ops {
            if kind == 0 && !heap.is_empty() {
                // Advance to the earliest pending deadline (what the
                // scheduler's advance-time phase does).
                let target = heap.peek().map(|Reverse((at, _))| *at).expect("non-empty");
                prop_assert_eq!(wheel.next_at(), Some(target));
                drain_to(target, &mut wheel, &mut heap)?;
                now = now.max(target);
            } else {
                let at = now + delay;
                heap.push(Reverse((at, seq)));
                wheel.insert(at, seq);
                seq += 1;
            }
        }
        // Drain everything left.
        drain_to(u64::MAX, &mut wheel, &mut heap)?;
        prop_assert!(wheel.is_empty());
    }

    /// Randomized `notify_after`/`cancel`/`make_periodic` schedules on
    /// one event, run through the engine (and thus the wheel), fire at
    /// exactly the times the `sc_event` rules predict: earliest pending
    /// notification wins, cancel clears, a periodic event re-arms one
    /// period after each firing.
    #[test]
    fn wheel_backed_notifications_match_sc_event_rules(
        cmds in proptest::collection::vec((0u8..8, 1u64..2_000), 1..24),
        period_us in 50u64..400,
        periodic in proptest::any::<bool>(),
    ) {
        const HORIZON_US: u64 = 10_000;
        let mut sim = Simulation::new();
        let h = sim.handle();
        let e = h.create_event("e");
        let fired: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let f = Arc::clone(&fired);
        h.spawn_method("rec", &[e], false, move |ctx| {
            f.lock().unwrap().push(ctx.now().as_us());
        });

        // Reference model of the single-pending-notification rule.
        let mut pending: Option<u64> = None;
        for (kind, d) in &cmds {
            if *kind == 0 {
                h.cancel(e);
                pending = None;
            } else {
                h.notify_after(e, SimTime::from_us(*d));
                pending = Some(pending.map_or(*d, |p| p.min(*d)));
            }
        }
        if periodic {
            h.make_periodic(e, SimTime::from_us(period_us), SimTime::from_us(period_us));
            pending = Some(pending.map_or(period_us, |p| p.min(period_us)));
        }

        sim.run_until(SimTime::from_us(HORIZON_US));

        let mut expect = Vec::new();
        if let Some(t0) = pending {
            if periodic {
                let mut t = t0;
                while t <= HORIZON_US {
                    expect.push(t);
                    t += period_us;
                }
            } else if t0 <= HORIZON_US {
                expect.push(t0);
            }
        }
        let fired = fired.lock().unwrap().clone();
        prop_assert_eq!(fired, expect);
    }

    /// Same wheel-vs-heap differential, but with deadline deltas spread
    /// over the full `u64` range (far beyond one rotation of any wheel
    /// level) and advances to arbitrary non-deadline targets, so
    /// high-level cascades and partial-slot re-filing are exercised.
    /// A long deadline must come back out at its exact residual — never
    /// early, never saturated to a nearer slot.
    #[test]
    fn wheel_preserves_residuals_beyond_one_rotation(
        ops in proptest::collection::vec((0u32..64, any::<u64>(), 0u8..3), 1..120),
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut wheel: sysc::TimingWheel<u64> = sysc::TimingWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut due = Vec::new();

        for (magnitude, raw, kind) in ops {
            // Exponentially distributed delta: up to 2^magnitude.
            let delta = raw % (1u64 << magnitude.min(63)).max(1);
            if kind == 0 {
                // Advance to an arbitrary target (not necessarily a
                // deadline) — the run_until(limit) shape.
                let target = now.saturating_add(delta);
                let mut expect = Vec::new();
                while heap.peek().is_some_and(|Reverse((at, _))| *at <= target) {
                    let Reverse(e) = heap.pop().expect("peeked");
                    expect.push(e);
                }
                let expect_next = expect
                    .iter()
                    .map(|&(at, _)| at)
                    .chain(heap.peek().map(|Reverse((at, _))| *at))
                    .min();
                prop_assert_eq!(wheel.next_at(), expect_next);
                due.clear();
                wheel.advance_to(target, &mut due);
                let got: Vec<(u64, u64)> = due.iter().map(|e| (e.at, e.action)).collect();
                prop_assert_eq!(got, expect, "divergence advancing to {}", target);
                now = target;
            } else {
                let at = now.saturating_add(delta);
                heap.push(Reverse((at, seq)));
                wheel.insert(at, seq);
                seq += 1;
            }
        }
        let mut expect = Vec::new();
        while let Some(Reverse(e)) = heap.pop() {
            expect.push(e);
        }
        due.clear();
        wheel.advance_to(u64::MAX, &mut due);
        let got: Vec<(u64, u64)> = due.iter().map(|e| (e.at, e.action)).collect();
        prop_assert_eq!(got, expect, "final drain diverged");
        prop_assert!(wheel.is_empty());
    }

    /// A timeout so large that `now + d` exceeds the representable time
    /// range must clamp to end-of-time (effectively never) — not wrap
    /// around and fire immediately. The event path must still win.
    #[test]
    fn huge_timeouts_never_fire_early(fire_at_us in 1u64..5_000) {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let e = h.create_event("e");
        let woke: Arc<Mutex<Vec<(u64, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let w = Arc::clone(&woke);
        h.spawn_thread("waiter", SpawnMode::Immediate, move |ctx| {
            // Effectively-forever timeout: would overflow `u64` ps.
            let outcome = ctx.wait_event_timeout(e, SimTime::MAX);
            w.lock()
                .unwrap()
                .push((ctx.now().as_us(), outcome == sysc::WaitOutcome::Fired));
        });
        h.notify_after(e, SimTime::from_us(fire_at_us));
        sim.run_until(SimTime::from_ms(100));
        let woke = woke.lock().unwrap().clone();
        prop_assert_eq!(woke, vec![(fire_at_us, true)]);
    }

    /// Killing random subsets of processes never deadlocks the engine
    /// and the survivors finish.
    #[test]
    fn kill_any_subset_is_safe(kill_mask in 0u32..256) {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let done = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut ids = Vec::new();
        for i in 0..8 {
            let d = Arc::clone(&done);
            let pid = h.spawn_thread(&format!("p{i}"), SpawnMode::Immediate, move |ctx| {
                ctx.wait_time(SimTime::from_ms(5));
                d.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
            ids.push(pid);
        }
        sim.run_until(SimTime::from_ms(1));
        let mut killed = 0;
        for (i, pid) in ids.iter().enumerate() {
            if kill_mask & (1 << i) != 0 {
                sim.handle().kill(*pid);
                killed += 1;
            }
        }
        prop_assert_eq!(sim.run_to_completion(), RunOutcome::Starved);
        prop_assert_eq!(
            done.load(std::sync::atomic::Ordering::SeqCst),
            8 - killed
        );
    }
}
