//! Semantic tests for the sysc discrete-event kernel: scheduling order,
//! notification rules, delta cycles, waits, kills and panics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sysc::{ProcId, RunOutcome, SimTime, Simulation, SpawnMode, Tracer, WaitOutcome, WakeReason};

fn ms(v: u64) -> SimTime {
    SimTime::from_ms(v)
}
fn us(v: u64) -> SimTime {
    SimTime::from_us(v)
}

/// Shared log used to assert deterministic ordering.
#[derive(Clone, Default)]
struct Log(Arc<Mutex<Vec<String>>>);

impl Log {
    fn push(&self, s: impl Into<String>) {
        self.0.lock().unwrap().push(s.into());
    }
    fn take(&self) -> Vec<String> {
        std::mem::take(&mut self.0.lock().unwrap())
    }
}

#[test]
fn empty_simulation_starves_immediately() {
    let mut sim = Simulation::new();
    assert_eq!(sim.run_to_completion(), RunOutcome::Starved);
    assert_eq!(sim.now(), SimTime::ZERO);
}

#[test]
fn wait_time_advances_clock() {
    let mut sim = Simulation::new();
    let log = Log::default();
    let l = log.clone();
    sim.handle()
        .spawn_thread("p", SpawnMode::Immediate, move |ctx| {
            l.push(format!("start@{}", ctx.now()));
            ctx.wait_time(us(100));
            l.push(format!("mid@{}", ctx.now()));
            ctx.wait_time(us(250));
            l.push(format!("end@{}", ctx.now()));
        });
    assert_eq!(sim.run_to_completion(), RunOutcome::Starved);
    assert_eq!(log.take(), vec!["start@0 s", "mid@100 us", "end@350 us"]);
    assert_eq!(sim.now(), us(350));
}

#[test]
fn run_until_pauses_and_resumes() {
    let mut sim = Simulation::new();
    let counter = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&counter);
    sim.handle()
        .spawn_thread("p", SpawnMode::Immediate, move |ctx| loop {
            ctx.wait_time(ms(1));
            c.fetch_add(1, Ordering::SeqCst);
        });
    assert_eq!(sim.run_until(ms(5)), RunOutcome::ReachedLimit);
    assert_eq!(counter.load(Ordering::SeqCst), 5);
    assert_eq!(sim.now(), ms(5));
    assert_eq!(sim.run_until(ms(12)), RunOutcome::ReachedLimit);
    assert_eq!(counter.load(Ordering::SeqCst), 12);
}

#[test]
fn processes_run_in_spawn_order_within_a_phase() {
    let mut sim = Simulation::new();
    let log = Log::default();
    for i in 0..5 {
        let l = log.clone();
        sim.handle()
            .spawn_thread(&format!("p{i}"), SpawnMode::Immediate, move |_ctx| {
                l.push(format!("p{i}"));
            });
    }
    sim.run_to_completion();
    assert_eq!(log.take(), vec!["p0", "p1", "p2", "p3", "p4"]);
}

#[test]
fn immediate_notification_wakes_in_same_eval_phase() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e = h.create_event("e");
    let log = Log::default();

    let l = log.clone();
    h.spawn_thread("waiter", SpawnMode::Immediate, move |ctx| {
        ctx.wait_event(e);
        l.push(format!("woken@{}", ctx.now()));
    });
    let l = log.clone();
    h.spawn_thread("notifier", SpawnMode::Immediate, move |ctx| {
        ctx.handle().notify(e);
        l.push("notified".to_string());
    });
    sim.run_to_completion();
    // Waiter runs first (spawn order), waits; notifier fires immediately;
    // waiter wakes within the same evaluation phase at time zero.
    assert_eq!(log.take(), vec!["notified", "woken@0 s"]);
}

#[test]
fn delta_notification_wakes_one_delta_later() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e = h.create_event("e");
    let log = Log::default();

    let l = log.clone();
    h.spawn_thread("waiter", SpawnMode::Immediate, move |ctx| {
        ctx.wait_event(e);
        l.push("woken".to_string());
    });
    let l = log.clone();
    h.spawn_thread("notifier", SpawnMode::Immediate, move |ctx| {
        ctx.handle().notify_delta(e);
        l.push("posted".to_string());
        ctx.yield_delta();
        l.push("after-delta".to_string());
    });
    sim.run_to_completion();
    let entries = log.take();
    assert_eq!(entries[0], "posted");
    // Both wake in the next delta; waiter was registered first.
    assert_eq!(entries[1], "woken");
    assert_eq!(entries[2], "after-delta");
}

#[test]
fn timed_notification_fires_at_the_right_time() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e = h.create_event("e");
    let log = Log::default();
    let l = log.clone();
    h.spawn_thread("waiter", SpawnMode::Immediate, move |ctx| {
        ctx.wait_event(e);
        l.push(format!("woken@{}", ctx.now()));
    });
    h.notify_after(e, us(777));
    sim.run_to_completion();
    assert_eq!(log.take(), vec!["woken@777 us"]);
}

#[test]
fn earlier_timed_notification_overrides_later() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e = h.create_event("e");
    h.notify_after(e, us(500));
    h.notify_after(e, us(100)); // earlier wins
    h.notify_after(e, us(900)); // ignored: later than pending
    let log = Log::default();
    let l = log.clone();
    h.spawn_thread("waiter", SpawnMode::Immediate, move |ctx| {
        ctx.wait_event(e);
        l.push(format!("woken@{}", ctx.now()));
    });
    sim.run_to_completion();
    assert_eq!(log.take(), vec!["woken@100 us"]);
    assert_eq!(sim.handle().event_fire_count(e), 1);
}

#[test]
fn cancel_removes_pending_notification() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e = h.create_event("e");
    h.notify_after(e, us(100));
    h.cancel(e);
    assert_eq!(sim.run_to_completion(), RunOutcome::Starved);
    assert_eq!(sim.handle().event_fire_count(e), 0);
}

#[test]
fn wait_event_timeout_fires_and_times_out() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e = h.create_event("e");
    let log = Log::default();

    let l = log.clone();
    h.spawn_thread("p", SpawnMode::Immediate, move |ctx| {
        // First: event arrives before timeout.
        ctx.handle().notify_after(e, us(10));
        let r = ctx.wait_event_timeout(e, us(100));
        l.push(format!("{r:?}@{}", ctx.now()));
        // Second: timeout elapses first.
        let r = ctx.wait_event_timeout(e, us(50));
        l.push(format!("{r:?}@{}", ctx.now()));
    });
    sim.run_to_completion();
    assert_eq!(log.take(), vec!["Fired@10 us", "TimedOut@60 us"]);
}

#[test]
fn timeout_cancellation_does_not_wake_later() {
    // After the event fires first, the stale timeout must not wake the
    // process out of its next wait.
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e = h.create_event("e");
    let log = Log::default();
    let l = log.clone();
    h.spawn_thread("p", SpawnMode::Immediate, move |ctx| {
        ctx.handle().notify_after(e, us(10));
        let r = ctx.wait_event_timeout(e, us(1000));
        assert_eq!(r, WaitOutcome::Fired);
        // Now sleep over the stale timeout's expiry (t=1000us).
        ctx.wait_time(us(5000));
        l.push(format!("woke@{}", ctx.now()));
    });
    sim.run_to_completion();
    assert_eq!(log.take(), vec!["woke@5010 us"]);
}

#[test]
fn wait_any_returns_the_fired_event() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e1 = h.create_event("e1");
    let e2 = h.create_event("e2");
    let e3 = h.create_event("e3");
    let log = Log::default();
    let l = log.clone();
    h.spawn_thread("p", SpawnMode::Immediate, move |ctx| {
        let fired = ctx.wait_any(&[e1, e2, e3]);
        l.push(format!("fired={}", ctx.handle().event_name(fired)));
    });
    h.notify_after(e2, us(5));
    sim.run_to_completion();
    assert_eq!(log.take(), vec!["fired=e2"]);
}

#[test]
fn wait_all_requires_every_event() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e1 = h.create_event("e1");
    let e2 = h.create_event("e2");
    let log = Log::default();
    let l = log.clone();
    h.spawn_thread("p", SpawnMode::Immediate, move |ctx| {
        ctx.wait_all(&[e1, e2]);
        l.push(format!("all@{}", ctx.now()));
        assert_eq!(ctx.last_wake_reason(), WakeReason::AllFired);
    });
    h.notify_after(e1, us(10));
    h.notify_after(e2, us(30));
    sim.run_to_completion();
    assert_eq!(log.take(), vec!["all@30 us"]);
}

#[test]
fn spawn_waiting_on_event_starts_parked() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let start = h.create_event("start");
    let log = Log::default();
    let l = log.clone();
    h.spawn_thread("task", SpawnMode::WaitEvent(start), move |ctx| {
        l.push(format!("started@{}", ctx.now()));
    });
    // Nothing happens until the start event; with no timed activity the
    // run starves at time zero (SystemC semantics: `now` stays at the
    // last activity).
    assert_eq!(sim.run_until(ms(1)), RunOutcome::Starved);
    assert!(log.take().is_empty());
    assert_eq!(sim.now(), SimTime::ZERO);
    sim.handle().notify_after(start, us(500));
    sim.run_until(ms(3));
    assert_eq!(log.take(), vec!["started@500 us"]);
}

#[test]
fn dynamic_spawn_from_running_process() {
    let mut sim = Simulation::new();
    let log = Log::default();
    let l = log.clone();
    sim.handle()
        .spawn_thread("parent", SpawnMode::Immediate, move |ctx| {
            ctx.wait_time(us(10));
            let l2 = l.clone();
            ctx.handle()
                .spawn_thread("child", SpawnMode::Immediate, move |cctx| {
                    l2.push(format!("child@{}", cctx.now()));
                    cctx.wait_time(us(5));
                    l2.push(format!("child-done@{}", cctx.now()));
                });
            l.push(format!("parent@{}", ctx.now()));
        });
    sim.run_to_completion();
    // Child becomes runnable in the same eval phase, after parent yields.
    assert_eq!(
        log.take(),
        vec!["parent@10 us", "child@10 us", "child-done@15 us"]
    );
}

#[test]
fn kill_unwinds_target_and_runs_drops() {
    struct Guard(Log);
    impl Drop for Guard {
        fn drop(&mut self) {
            self.0.push("dropped");
        }
    }
    let mut sim = Simulation::new();
    let h = sim.handle();
    let log = Log::default();
    let l = log.clone();
    let victim = h.spawn_thread("victim", SpawnMode::Immediate, move |ctx| {
        let _g = Guard(l.clone());
        ctx.wait_time(SimTime::from_secs(100));
        l.push("should never run");
    });
    let l = log.clone();
    h.spawn_thread("killer", SpawnMode::Immediate, move |ctx| {
        ctx.wait_time(us(10));
        ctx.handle().kill(victim);
        l.push("killed");
    });
    sim.run_to_completion();
    assert_eq!(log.take(), vec!["dropped", "killed"]);
    assert!(sim.handle().is_finished(victim));
}

#[test]
fn kill_is_idempotent() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let victim = h.spawn_thread("victim", SpawnMode::Immediate, |ctx| {
        ctx.wait_time(SimTime::from_secs(100));
    });
    sim.run_until(us(1));
    sim.handle().kill(victim);
    sim.handle().kill(victim); // no-op
    assert!(sim.handle().is_finished(victim));
}

#[test]
fn exit_terminates_early_with_drops() {
    struct Guard(Log);
    impl Drop for Guard {
        fn drop(&mut self) {
            self.0.push("dropped");
        }
    }
    let mut sim = Simulation::new();
    let log = Log::default();
    let l = log.clone();
    sim.handle()
        .spawn_thread("p", SpawnMode::Immediate, move |ctx| {
            let _g = Guard(l.clone());
            l.push("before-exit");
            ctx.exit();
        });
    sim.run_to_completion();
    assert_eq!(log.take(), vec!["before-exit", "dropped"]);
}

#[test]
#[should_panic(expected = "process boom")]
fn process_panic_propagates_to_run() {
    let mut sim = Simulation::new();
    sim.handle()
        .spawn_thread("p", SpawnMode::Immediate, |_ctx| {
            panic!("process boom");
        });
    sim.run_to_completion();
}

#[test]
fn method_process_triggered_by_events() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e = h.create_event("e");
    let count = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&count);
    h.spawn_method("m", &[e], false, move |ctx| {
        assert_eq!(ctx.triggered_by(), Some(e));
        c.fetch_add(1, Ordering::SeqCst);
    });
    h.make_periodic(e, ms(1), ms(1));
    sim.run_until(ms(7));
    assert_eq!(count.load(Ordering::SeqCst), 7);
}

#[test]
fn method_run_at_start_runs_once_without_trigger() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e = h.create_event("e");
    let count = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&count);
    h.spawn_method("m", &[e], true, move |ctx| {
        assert_eq!(ctx.triggered_by(), None);
        c.fetch_add(1, Ordering::SeqCst);
    });
    sim.run_to_completion();
    assert_eq!(count.load(Ordering::SeqCst), 1);
}

#[test]
fn method_triggered_once_per_delta_even_with_multiple_events() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e1 = h.create_event("e1");
    let e2 = h.create_event("e2");
    let count = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&count);
    h.spawn_method("m", &[e1, e2], false, move |_ctx| {
        c.fetch_add(1, Ordering::SeqCst);
    });
    // Both events in the same delta.
    h.notify_after(e1, us(10));
    h.notify_after(e2, us(10));
    sim.run_to_completion();
    assert_eq!(count.load(Ordering::SeqCst), 1);
}

#[test]
fn zero_time_wait_is_one_delta() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let log = Log::default();
    let l = log.clone();
    h.spawn_thread("a", SpawnMode::Immediate, move |ctx| {
        l.push("a1");
        ctx.wait_time(SimTime::ZERO);
        l.push("a2");
    });
    let l = log.clone();
    h.spawn_thread("b", SpawnMode::Immediate, move |_ctx| {
        l.push("b");
    });
    sim.run_to_completion();
    // a's second half runs in the next delta, after b.
    assert_eq!(log.take(), vec!["a1", "b", "a2"]);
}

#[test]
fn delta_limit_guard_catches_oscillation() {
    let mut sim = Simulation::new();
    sim.set_max_deltas_per_timestep(100);
    let h = sim.handle();
    let e = h.create_event("e");
    h.spawn_thread("osc", SpawnMode::Immediate, move |ctx| loop {
        ctx.handle().notify_delta(e);
        ctx.wait_event(e);
    });
    assert_eq!(sim.run_to_completion(), RunOutcome::DeltaLimitExceeded);
}

#[test]
fn stats_are_counted() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e = h.create_event("e");
    h.make_periodic(e, ms(1), ms(1));
    let _p = h.spawn_thread("p", SpawnMode::Immediate, move |ctx| {
        for _ in 0..5 {
            ctx.wait_event(e);
        }
    });
    sim.run_until(ms(10));
    let stats = sim.stats();
    assert_eq!(stats.events_fired, 10);
    assert!(stats.process_runs >= 6); // 1 initial + 5 wakes
    assert!(stats.time_advances >= 10);
}

#[test]
fn tracer_sees_dispatches_and_time() {
    #[derive(Default)]
    struct T {
        dispatches: AtomicU64,
        advances: AtomicU64,
        fires: AtomicU64,
    }
    impl Tracer for T {
        fn process_dispatched(&self, _now: SimTime, _p: ProcId, _name: &str) {
            self.dispatches.fetch_add(1, Ordering::SeqCst);
        }
        fn time_advanced(&self, _from: SimTime, _to: SimTime) {
            self.advances.fetch_add(1, Ordering::SeqCst);
        }
        fn event_fired(&self, _now: SimTime, _e: sysc::EventId, _name: &str) {
            self.fires.fetch_add(1, Ordering::SeqCst);
        }
    }
    let mut sim = Simulation::new();
    let tracer = Arc::new(T::default());
    sim.set_tracer(Arc::clone(&tracer) as Arc<dyn Tracer>);
    let h = sim.handle();
    let e = h.create_event("e");
    h.spawn_thread("p", SpawnMode::Immediate, move |ctx| {
        ctx.wait_time(us(10));
        ctx.handle().notify(e);
        ctx.wait_time(us(10));
    });
    sim.run_to_completion();
    assert!(tracer.dispatches.load(Ordering::SeqCst) >= 3);
    assert_eq!(tracer.fires.load(Ordering::SeqCst), 1);
    assert_eq!(tracer.advances.load(Ordering::SeqCst), 2);
}

#[test]
fn drop_terminates_live_processes_cleanly() {
    let log = Log::default();
    struct Guard(Log);
    impl Drop for Guard {
        fn drop(&mut self) {
            self.0.push("cleaned");
        }
    }
    {
        let mut sim = Simulation::new();
        let l = log.clone();
        sim.handle()
            .spawn_thread("p", SpawnMode::Immediate, move |ctx| {
                let _g = Guard(l.clone());
                loop {
                    ctx.wait_time(ms(1));
                }
            });
        sim.run_until(ms(3));
        // sim dropped here with p still waiting.
    }
    assert_eq!(log.take(), vec!["cleaned"]);
}

#[test]
fn two_identical_runs_produce_identical_logs() {
    fn run_once() -> Vec<String> {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let log = Log::default();
        let e = h.create_event("sync");
        for i in 0..4 {
            let l = log.clone();
            h.spawn_thread(&format!("w{i}"), SpawnMode::Immediate, move |ctx| {
                for round in 0..10 {
                    ctx.wait_time(us(10 * (i + 1)));
                    l.push(format!("w{i}r{round}@{}", ctx.now()));
                    if i == 0 {
                        ctx.handle().notify(e);
                    }
                }
            });
        }
        sim.run_to_completion();
        log.take()
    }
    assert_eq!(run_once(), run_once());
}

#[test]
fn many_processes_scale() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let counter = Arc::new(AtomicU64::new(0));
    for i in 0..100 {
        let c = Arc::clone(&counter);
        h.spawn_thread(&format!("p{i}"), SpawnMode::Immediate, move |ctx| {
            for _ in 0..10 {
                ctx.wait_time(us(i + 1));
            }
            c.fetch_add(1, Ordering::SeqCst);
        });
    }
    sim.run_to_completion();
    assert_eq!(counter.load(Ordering::SeqCst), 100);
}

#[test]
fn notify_between_runs_is_delivered_on_next_run() {
    let mut sim = Simulation::new();
    let h = sim.handle();
    let e = h.create_event("e");
    let log = Log::default();
    let l = log.clone();
    h.spawn_thread("p", SpawnMode::Immediate, move |ctx| {
        ctx.wait_event(e);
        l.push(format!("woken@{}", ctx.now()));
    });
    assert_eq!(sim.run_until(ms(1)), RunOutcome::Starved);
    assert!(log.take().is_empty());
    sim.handle().notify(e); // immediate notify while paused (still t=0)
    sim.run_until(ms(2));
    assert_eq!(log.take(), vec!["woken@0 s"]);
}
