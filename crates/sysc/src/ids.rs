//! Lightweight identifier newtypes for kernel objects.

use std::fmt;

/// Identifies a process (thread or method) inside one [`crate::Simulation`].
///
/// Ids are dense indices assigned in creation order and are never reused
/// within a simulation, so they are safe to store in traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub(crate) u32);

impl ProcId {
    /// Raw index value (creation order).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies an event inside one [`crate::Simulation`].
///
/// Like [`ProcId`], event ids are dense creation-order indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u32);

impl EventId {
    /// Raw index value (creation order).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ProcId(3).to_string(), "P3");
        assert_eq!(EventId(7).to_string(), "E7");
        assert_eq!(ProcId(3).index(), 3);
        assert_eq!(EventId(7).index(), 7);
    }

    #[test]
    fn ordering_follows_creation_order() {
        assert!(ProcId(1) < ProcId(2));
        assert!(EventId(0) < EventId(9));
    }
}
