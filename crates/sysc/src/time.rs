//! Simulation time.
//!
//! [`SimTime`] is the single time type of the kernel, used both for points
//! in simulated time and for durations, mirroring SystemC's `sc_time`. The
//! internal resolution is one picosecond stored in a `u64`, which gives a
//! maximum representable time of roughly 213 days — far beyond any RTOS
//! co-simulation session.
//!
//! Picoseconds were chosen so that every period used by the reproduced
//! paper is exact: a 12 MHz i8051 oscillator yields a 1 µs machine cycle
//! (1_000_000 ps) and the kernel tick is 1 ms (10^9 ps).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in simulated time or a duration, with picosecond resolution.
///
/// # Examples
///
/// ```
/// use sysc::SimTime;
///
/// let tick = SimTime::from_ms(1);
/// let cycle = SimTime::from_us(1);
/// assert_eq!(tick / cycle, 1000);
/// assert_eq!(tick + cycle, SimTime::from_ns(1_001_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero (also the zero-length duration).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time (~213 days).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole microseconds (truncating).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000_000
    }

    /// Time as fractional seconds (for reporting; not for scheduling math).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// `true` if this is [`SimTime::ZERO`].
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// Checked subtraction; `None` on underflow.
    pub const fn checked_sub(self, rhs: SimTime) -> Option<SimTime> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two times.
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// The larger of two times.
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Mul<SimTime> for u64 {
    type Output = SimTime;
    fn mul(self, rhs: SimTime) -> SimTime {
        SimTime(self * rhs.0)
    }
}

/// Integer ratio of two times (how many `rhs` fit in `self`).
impl Div<SimTime> for SimTime {
    type Output = u64;
    fn div(self, rhs: SimTime) -> u64 {
        self.0 / rhs.0
    }
}

/// Scales a time down by an integer factor.
impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

/// Remainder of one time modulo another (phase within a period).
impl Rem<SimTime> for SimTime {
    type Output = SimTime;
    fn rem(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 % rhs.0)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    /// Renders with the coarsest unit that divides the value exactly,
    /// e.g. `1 ms`, `250 us`, `1500 ps`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            return write!(f, "0 s");
        }
        const UNITS: [(u64, &str); 5] = [
            (1_000_000_000_000, "s"),
            (1_000_000_000, "ms"),
            (1_000_000, "us"),
            (1_000, "ns"),
            (1, "ps"),
        ];
        for (scale, unit) in UNITS {
            if ps.is_multiple_of(scale) {
                return write!(f, "{} {}", ps / scale, unit);
            }
        }
        unreachable!("scale 1 always divides")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_scale() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn machine_cycle_and_tick_are_exact() {
        // 12 MHz oscillator, 12 clocks per machine cycle => 1 us exactly.
        let cycle = SimTime::from_us(1);
        assert_eq!(cycle.as_ps(), 1_000_000);
        let tick = SimTime::from_ms(1);
        assert_eq!(tick / cycle, 1_000);
        assert_eq!(tick % cycle, SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(3);
        let b = SimTime::from_us(2);
        assert_eq!(a + b, SimTime::from_us(5));
        assert_eq!(a - b, SimTime::from_us(1));
        assert_eq!(a * 4, SimTime::from_us(12));
        assert_eq!(4 * a, SimTime::from_us(12));
        assert_eq!(a / b, 1);
        assert_eq!(a % b, SimTime::from_us(1));
        assert_eq!(a / 3, SimTime::from_us(1));
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_us(5));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn checked_and_saturating() {
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_ps(1)), None);
        assert_eq!(SimTime::ZERO.checked_sub(SimTime::from_ps(1)), None);
        assert_eq!(
            SimTime::MAX.saturating_add(SimTime::from_ps(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimTime::from_ps(1)),
            SimTime::ZERO
        );
        assert_eq!(
            SimTime::from_us(5).checked_sub(SimTime::from_us(2)),
            Some(SimTime::from_us(3))
        );
    }

    #[test]
    fn ordering_min_max() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(20);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(!a.is_zero());
        assert!(SimTime::ZERO.is_zero());
    }

    #[test]
    fn display_picks_exact_unit() {
        assert_eq!(SimTime::ZERO.to_string(), "0 s");
        assert_eq!(SimTime::from_ms(1).to_string(), "1 ms");
        assert_eq!(SimTime::from_us(250).to_string(), "250 us");
        assert_eq!(SimTime::from_ps(1_500).to_string(), "1500 ps");
        assert_eq!(SimTime::from_secs(2).to_string(), "2 s");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(SimTime::from_us).sum();
        assert_eq!(total, SimTime::from_us(10));
    }

    #[test]
    fn as_secs_f64_reporting() {
        assert!((SimTime::from_ms(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
