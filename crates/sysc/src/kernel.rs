//! The discrete-event scheduler: evaluate → update → delta-notify →
//! advance-time, exactly mirroring the SystemC 2.0 simulation cycle that
//! the reproduced paper builds on.
//!
//! # Lock discipline
//!
//! All kernel state lives behind one mutex. The lock is **never** held
//! while a process body runs: the kernel releases it before handing the
//! baton to a thread process or invoking a method callback, so process
//! bodies are free to call any [`SimHandle`] API.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::ids::{EventId, ProcId};
use crate::process::{reply_from_panic, raise_terminate, Cmd, ProcShared, Reply, WaitSpec, WakeReason};
use crate::signal::UpdateTarget;
use crate::time::SimTime;
use crate::trace::{KernelStats, Tracer};

/// Why a call to [`Simulation::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// No future activity exists: every process is waiting with nothing
    /// pending (event starvation), or all processes finished.
    Starved,
    /// The requested time limit was reached; activity remains pending.
    ReachedLimit,
    /// The per-timestep delta-cycle limit was exceeded (a combinational
    /// loop or a zero-delay oscillation).
    DeltaLimitExceeded,
}

/// Outcome of a `wait_event_timeout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The event fired before the timeout.
    Fired,
    /// The timeout elapsed first.
    TimedOut,
}

/// How a newly spawned thread process starts.
#[derive(Debug, Clone, Copy)]
pub enum SpawnMode {
    /// Runnable immediately (current/initial evaluation phase).
    Immediate,
    /// Parked until the given event fires for the first time.
    WaitEvent(EventId),
}

/// What a process is currently waiting for (bookkeeping for wake-ups).
#[derive(Debug)]
enum WaitKind {
    None,
    Time,
    Event,
    EventTimeout,
    Any,
    All { remaining: Vec<EventId> },
    Yield,
}

enum ProcBody {
    Thread {
        shared: Arc<ProcShared>,
        join: Option<JoinHandle<()>>,
    },
    Method {
        callback: Option<Box<dyn FnMut(&mut MethodCtx) + Send>>,
        queued: bool,
        trigger: Option<EventId>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Ready,
    Running,
    Waiting,
    Finished,
}

struct ProcEntry {
    name: String,
    body: ProcBody,
    state: ProcState,
    wait_kind: WaitKind,
    /// Bumped on every registration and wake; stale registrations carry
    /// an older generation and are ignored.
    wait_gen: u64,
    pending_reason: WakeReason,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    None,
    Delta,
    At(SimTime),
}

struct EventEntry {
    name: String,
    /// Thread processes dynamically waiting on this event: `(proc, gen)`.
    waiters: Vec<(ProcId, u64)>,
    /// Method processes statically sensitive to this event.
    method_subs: Vec<ProcId>,
    pending: Pending,
    /// Bumped on fire/cancel/renotify; stale heap entries are ignored.
    gen: u64,
    /// If set, the event re-notifies itself this long after each firing
    /// (periodic clock support).
    auto_renotify: Option<SimTime>,
    fire_count: u64,
}

#[derive(Debug, PartialEq, Eq)]
enum TimedAction {
    FireEvent { event: EventId, gen: u64 },
    WakeProc { proc: ProcId, gen: u64 },
}

#[derive(PartialEq, Eq)]
struct TimedEntry {
    at: SimTime,
    seq: u64,
    action: TimedAction,
}

impl Ord for TimedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for TimedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct KState {
    now: SimTime,
    procs: Vec<ProcEntry>,
    events: Vec<EventEntry>,
    runnable: VecDeque<ProcId>,
    /// Processes that yielded and become runnable at the next delta.
    next_delta_runnable: VecDeque<ProcId>,
    timed: BinaryHeap<Reverse<TimedEntry>>,
    /// Events with a pending delta notification.
    delta_notified: Vec<EventId>,
    updates: Vec<Arc<dyn UpdateTarget>>,
    tracer: Option<Arc<dyn Tracer>>,
    stats: KernelStats,
    current: Option<ProcId>,
    seq: u64,
    in_run: bool,
    max_deltas_per_timestep: u64,
}

pub(crate) struct Kernel {
    st: Mutex<KState>,
}

impl Kernel {
    fn new() -> Self {
        Kernel {
            st: Mutex::new(KState {
                now: SimTime::ZERO,
                procs: Vec::new(),
                events: Vec::new(),
                runnable: VecDeque::new(),
                next_delta_runnable: VecDeque::new(),
                timed: BinaryHeap::new(),
                delta_notified: Vec::new(),
                updates: Vec::new(),
                tracer: None,
                stats: KernelStats::default(),
                current: None,
                seq: 0,
                in_run: false,
                max_deltas_per_timestep: 1_000_000,
            }),
        }
    }
}

impl KState {
    fn push_timed(&mut self, at: SimTime, action: TimedAction) {
        let seq = self.seq;
        self.seq += 1;
        self.timed.push(Reverse(TimedEntry { at, seq, action }));
    }

    /// Makes a waiting process runnable with the given wake reason and
    /// invalidates its other registrations.
    fn wake(&mut self, p: ProcId, reason: WakeReason) {
        let e = &mut self.procs[p.index()];
        debug_assert_eq!(e.state, ProcState::Waiting);
        e.wait_gen += 1;
        e.wait_kind = WaitKind::None;
        e.pending_reason = reason;
        e.state = ProcState::Ready;
        self.runnable.push_back(p);
    }

    /// Delivers one event firing: wakes dynamic waiters, queues sensitive
    /// methods, and re-arms auto-renotify clocks.
    fn fire_event(&mut self, id: EventId) {
        let now = self.now;
        self.stats.events_fired += 1;
        let (waiters, subs, renotify) = {
            let ev = &mut self.events[id.index()];
            ev.pending = Pending::None;
            ev.gen += 1;
            ev.fire_count += 1;
            (
                std::mem::take(&mut ev.waiters),
                ev.method_subs.clone(),
                ev.auto_renotify,
            )
        };
        if let Some(t) = &self.tracer {
            let name = self.events[id.index()].name.clone();
            t.event_fired(now, id, &name);
        }
        if let Some(period) = renotify {
            let gen = self.events[id.index()].gen;
            self.events[id.index()].pending = Pending::At(now + period);
            self.push_timed(now + period, TimedAction::FireEvent { event: id, gen });
        }
        for (p, gen) in waiters {
            if self.procs[p.index()].wait_gen != gen
                || self.procs[p.index()].state != ProcState::Waiting
            {
                continue;
            }
            let wake_all = match &mut self.procs[p.index()].wait_kind {
                WaitKind::All { remaining } => {
                    remaining.retain(|x| *x != id);
                    remaining.is_empty()
                }
                _ => {
                    self.wake(p, WakeReason::Fired(id));
                    continue;
                }
            };
            if wake_all {
                self.wake(p, WakeReason::AllFired);
            }
        }
        for m in subs {
            let entry = &mut self.procs[m.index()];
            if entry.state == ProcState::Finished {
                continue;
            }
            if let ProcBody::Method { queued, trigger, .. } = &mut entry.body {
                if !*queued {
                    *queued = true;
                    *trigger = Some(id);
                    self.runnable.push_back(m);
                }
            }
        }
    }

    /// Registers the wait request of a just-suspended thread process.
    fn register_wait(&mut self, p: ProcId, spec: WaitSpec) {
        let now = self.now;
        let gen = {
            let e = &mut self.procs[p.index()];
            e.state = ProcState::Waiting;
            e.wait_gen += 1;
            e.wait_gen
        };
        match spec {
            WaitSpec::Time(d) if d.is_zero() => {
                self.procs[p.index()].wait_kind = WaitKind::Yield;
                self.next_delta_runnable.push_back(p);
            }
            WaitSpec::Time(d) => {
                self.procs[p.index()].wait_kind = WaitKind::Time;
                self.push_timed(now + d, TimedAction::WakeProc { proc: p, gen });
            }
            WaitSpec::Event(e) => {
                self.procs[p.index()].wait_kind = WaitKind::Event;
                self.events[e.index()].waiters.push((p, gen));
            }
            WaitSpec::EventTimeout(e, d) => {
                self.procs[p.index()].wait_kind = WaitKind::EventTimeout;
                self.events[e.index()].waiters.push((p, gen));
                self.push_timed(now + d, TimedAction::WakeProc { proc: p, gen });
            }
            WaitSpec::AnyEvent(list) => {
                self.procs[p.index()].wait_kind = WaitKind::Any;
                for e in list {
                    self.events[e.index()].waiters.push((p, gen));
                }
            }
            WaitSpec::AllEvents(mut list) => {
                list.sort_unstable();
                list.dedup();
                if list.is_empty() {
                    self.procs[p.index()].wait_kind = WaitKind::Yield;
                    self.next_delta_runnable.push_back(p);
                    return;
                }
                for e in &list {
                    self.events[e.index()].waiters.push((p, gen));
                }
                self.procs[p.index()].wait_kind = WaitKind::All { remaining: list };
            }
            WaitSpec::YieldDelta => {
                self.procs[p.index()].wait_kind = WaitKind::Yield;
                self.next_delta_runnable.push_back(p);
            }
        }
    }

    fn finish_proc(&mut self, p: ProcId) {
        let e = &mut self.procs[p.index()];
        e.state = ProcState::Finished;
        e.wait_gen += 1;
        e.wait_kind = WaitKind::None;
    }
}

/// The simulation owner: spawns processes, runs the scheduler, and tears
/// everything down on drop.
///
/// # Examples
///
/// ```
/// use sysc::{Simulation, SimTime};
///
/// let mut sim = Simulation::new();
/// let h = sim.handle();
/// let done = h.create_event("done");
/// h.spawn_thread("worker", sysc::SpawnMode::Immediate, move |ctx| {
///     ctx.wait_time(SimTime::from_us(5));
///     ctx.handle().notify(done);
/// });
/// let outcome = sim.run_until(SimTime::from_ms(1));
/// assert_eq!(outcome, sysc::RunOutcome::Starved);
/// assert_eq!(sim.handle().event_fire_count(done), 1);
/// ```
pub struct Simulation {
    k: Arc<Kernel>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation").field("now", &self.now()).finish()
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            k: Arc::new(Kernel::new()),
        }
    }

    /// A cloneable handle for creating events/processes and notifying.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            k: Arc::clone(&self.k),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.k.st.lock().now
    }

    /// Kernel activity counters.
    pub fn stats(&self) -> KernelStats {
        self.k.st.lock().stats
    }

    /// Attaches a tracer (replacing any previous one).
    pub fn set_tracer(&self, tracer: Arc<dyn Tracer>) {
        self.k.st.lock().tracer = Some(tracer);
    }

    /// Removes the tracer.
    pub fn clear_tracer(&self) {
        self.k.st.lock().tracer = None;
    }

    /// Sets the delta-cycle limit per timestep (oscillation guard).
    pub fn set_max_deltas_per_timestep(&self, limit: u64) {
        self.k.st.lock().max_deltas_per_timestep = limit;
    }

    /// Runs until simulated time reaches `limit` (inclusive of activity
    /// scheduled exactly at `limit`) or no activity remains.
    ///
    /// On [`RunOutcome::ReachedLimit`] the simulation time is left at
    /// `limit` and the remaining activity stays pending, so `run_until`
    /// may be called again with a later limit (step mode).
    ///
    /// # Panics
    ///
    /// Re-raises any panic that occurred inside a process body.
    pub fn run_until(&mut self, limit: SimTime) -> RunOutcome {
        run_kernel(&self.k, limit)
    }

    /// Runs for `d` more simulated time (see [`Simulation::run_until`]).
    pub fn run_for(&mut self, d: SimTime) -> RunOutcome {
        let limit = self.now().saturating_add(d);
        self.run_until(limit)
    }

    /// Runs until event starvation (or the delta guard trips).
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Earliest pending timed activity, if any (may include cancelled
    /// entries; intended for step-mode heuristics only).
    pub fn next_activity_at(&self) -> Option<SimTime> {
        self.k.st.lock().timed.peek().map(|Reverse(e)| e.at)
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // Terminate every live thread process, then reap the OS threads.
        let mut joins = Vec::new();
        let mut shareds = Vec::new();
        {
            let mut st = self.k.st.lock();
            for p in st.procs.iter_mut() {
                if let ProcBody::Thread { shared, join } = &mut p.body {
                    if p.state != ProcState::Finished {
                        p.state = ProcState::Finished;
                        shareds.push(Arc::clone(shared));
                    }
                    if let Some(j) = join.take() {
                        joins.push(j);
                    }
                }
            }
        }
        for s in shareds {
            // The reply is Finished (cooperative unwind) or Panicked if a
            // Drop impl inside the process misbehaved; either way we are
            // tearing down and must not panic here.
            let _ = s.resume(Cmd::Terminate);
        }
        for j in joins {
            let _ = j.join();
        }
    }
}

/// Cloneable handle to a simulation: event/process creation and
/// notification. Usable from the embedding code and from inside process
/// bodies.
#[derive(Clone)]
pub struct SimHandle {
    k: Arc<Kernel>,
}

impl std::fmt::Debug for SimHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimHandle").finish_non_exhaustive()
    }
}

impl SimHandle {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.k.st.lock().now
    }

    /// Kernel activity counters.
    pub fn stats(&self) -> KernelStats {
        self.k.st.lock().stats
    }

    /// Creates a named event.
    pub fn create_event(&self, name: &str) -> EventId {
        let mut st = self.k.st.lock();
        let id = EventId(st.events.len() as u32);
        st.events.push(EventEntry {
            name: name.to_string(),
            waiters: Vec::new(),
            method_subs: Vec::new(),
            pending: Pending::None,
            gen: 0,
            auto_renotify: None,
            fire_count: 0,
        });
        id
    }

    /// Immediate notification: fires now, waking waiters into the current
    /// evaluation phase. Overrides (cancels) any pending notification.
    pub fn notify(&self, e: EventId) {
        let mut st = self.k.st.lock();
        st.events[e.index()].gen += 1; // invalidate pending timed entry
        st.events[e.index()].pending = Pending::None;
        st.fire_event(e);
    }

    /// Delta notification: fires in the next delta cycle. Overrides a
    /// pending timed notification; keeps an existing delta notification.
    pub fn notify_delta(&self, e: EventId) {
        let mut st = self.k.st.lock();
        let ev = &mut st.events[e.index()];
        match ev.pending {
            Pending::Delta => {}
            _ => {
                ev.gen += 1;
                ev.pending = Pending::Delta;
                st.delta_notified.push(e);
            }
        }
    }

    /// Timed notification after `delay`. Follows the `sc_event` override
    /// rule: an earlier pending notification wins; a later one is
    /// replaced. A zero delay degenerates to a delta notification.
    pub fn notify_after(&self, e: EventId, delay: SimTime) {
        if delay.is_zero() {
            return self.notify_delta(e);
        }
        let mut st = self.k.st.lock();
        let at = st.now + delay;
        let ev = &mut st.events[e.index()];
        match ev.pending {
            Pending::Delta => return,
            Pending::At(t) if t <= at => return,
            _ => {}
        }
        ev.gen += 1;
        let gen = ev.gen;
        ev.pending = Pending::At(at);
        st.push_timed(at, TimedAction::FireEvent { event: e, gen });
    }

    /// Cancels any pending (delta or timed) notification.
    pub fn cancel(&self, e: EventId) {
        let mut st = self.k.st.lock();
        let ev = &mut st.events[e.index()];
        ev.gen += 1;
        ev.pending = Pending::None;
    }

    /// Turns the event into a periodic clock: after each firing it
    /// re-notifies itself `period` later. The first firing is scheduled
    /// `first_after` from now.
    pub fn make_periodic(&self, e: EventId, period: SimTime, first_after: SimTime) {
        assert!(!period.is_zero(), "periodic event needs a non-zero period");
        {
            let mut st = self.k.st.lock();
            st.events[e.index()].auto_renotify = Some(period);
        }
        self.notify_after(e, first_after);
    }

    /// Stops the periodic re-notification of an event (the currently
    /// pending firing, if any, still happens unless cancelled).
    pub fn stop_periodic(&self, e: EventId) {
        self.k.st.lock().events[e.index()].auto_renotify = None;
    }

    /// Number of times the event has fired.
    pub fn event_fire_count(&self, e: EventId) -> u64 {
        self.k.st.lock().events[e.index()].fire_count
    }

    /// The event's name.
    pub fn event_name(&self, e: EventId) -> String {
        self.k.st.lock().events[e.index()].name.clone()
    }

    /// The process's name.
    pub fn proc_name(&self, p: ProcId) -> String {
        self.k.st.lock().procs[p.index()].name.clone()
    }

    /// Whether the process has finished (returned or been killed).
    pub fn is_finished(&self, p: ProcId) -> bool {
        self.k.st.lock().procs[p.index()].state == ProcState::Finished
    }

    /// Spawns a thread process. The body runs on its own OS thread under
    /// the baton protocol; it may suspend anywhere via [`ProcCtx`].
    pub fn spawn_thread<F>(&self, name: &str, mode: SpawnMode, body: F) -> ProcId
    where
        F: FnOnce(&mut ProcCtx) + Send + 'static,
    {
        let shared = Arc::new(ProcShared::new());
        let id;
        {
            let mut st = self.k.st.lock();
            id = ProcId(st.procs.len() as u32);
            st.procs.push(ProcEntry {
                name: name.to_string(),
                body: ProcBody::Thread {
                    shared: Arc::clone(&shared),
                    join: None,
                },
                state: ProcState::Ready,
                wait_kind: WaitKind::None,
                wait_gen: 0,
                pending_reason: WakeReason::Start,
            });
        }
        let handle = self.clone();
        let shared2 = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name(format!("sysc:{name}"))
            .stack_size(1 << 20)
            .spawn(move || match shared2.await_turn() {
                Cmd::Terminate => shared2.finish(Reply::Finished),
                Cmd::Run(reason) => {
                    let mut ctx = ProcCtx {
                        handle,
                        shared: Arc::clone(&shared2),
                        id,
                        last_reason: reason,
                    };
                    let result = panic::catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
                    let reply = match result {
                        Ok(()) => Reply::Finished,
                        Err(p) => reply_from_panic(p),
                    };
                    shared2.finish(reply);
                }
            })
            .expect("failed to spawn process thread");
        let mut st = self.k.st.lock();
        if let ProcBody::Thread { join: j, .. } = &mut st.procs[id.index()].body {
            *j = Some(join);
        }
        match mode {
            SpawnMode::Immediate => st.runnable.push_back(id),
            SpawnMode::WaitEvent(e) => {
                let gen = {
                    let pe = &mut st.procs[id.index()];
                    pe.state = ProcState::Waiting;
                    pe.wait_kind = WaitKind::Event;
                    pe.wait_gen += 1;
                    pe.wait_gen
                };
                st.events[e.index()].waiters.push((id, gen));
            }
        }
        id
    }

    /// Spawns a method process statically sensitive to `sensitivity`.
    /// The callback runs on the kernel thread (no stack switch); it must
    /// not block. If `run_at_start`, it is also queued once immediately.
    pub fn spawn_method<F>(
        &self,
        name: &str,
        sensitivity: &[EventId],
        run_at_start: bool,
        callback: F,
    ) -> ProcId
    where
        F: FnMut(&mut MethodCtx) + Send + 'static,
    {
        let mut st = self.k.st.lock();
        let id = ProcId(st.procs.len() as u32);
        st.procs.push(ProcEntry {
            name: name.to_string(),
            body: ProcBody::Method {
                callback: Some(Box::new(callback)),
                queued: run_at_start,
                trigger: None,
            },
            state: ProcState::Ready,
            wait_kind: WaitKind::None,
            wait_gen: 0,
            pending_reason: WakeReason::Start,
        });
        for e in sensitivity {
            st.events[e.index()].method_subs.push(id);
        }
        if run_at_start {
            st.runnable.push_back(id);
        }
        id
    }

    /// Terminates another process: its stack unwinds (running `Drop`
    /// impls) and it never runs again. Method processes are simply
    /// descheduled.
    ///
    /// # Panics
    ///
    /// Panics if `p` is the currently running process — a process exits
    /// itself with [`ProcCtx::exit`] instead.
    pub fn kill(&self, p: ProcId) {
        let shared = {
            let mut st = self.k.st.lock();
            if st.procs[p.index()].state == ProcState::Finished {
                return;
            }
            assert!(
                st.current != Some(p),
                "a process cannot kill itself; use ProcCtx::exit"
            );
            st.finish_proc(p);
            match &st.procs[p.index()].body {
                ProcBody::Thread { shared, .. } => Some(Arc::clone(shared)),
                ProcBody::Method { .. } => None,
            }
        };
        if let Some(s) = shared {
            // Cooperative unwind; reply is Finished (or Panicked from a
            // misbehaving Drop, which we surface).
            match s.resume(Cmd::Terminate) {
                Reply::Panicked(payload) => panic::resume_unwind(payload),
                _ => {}
            }
        }
    }

    /// Queues an update target for the next update phase (signal
    /// infrastructure; see [`crate::Signal`]).
    pub(crate) fn request_update(&self, target: Arc<dyn UpdateTarget>) {
        self.k.st.lock().updates.push(target);
    }
}

/// Per-process context passed to thread-process bodies; provides the wait
/// primitives (the only way a process may consume simulated time).
pub struct ProcCtx {
    handle: SimHandle,
    shared: Arc<ProcShared>,
    id: ProcId,
    last_reason: WakeReason,
}

impl std::fmt::Debug for ProcCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcCtx")
            .field("id", &self.id)
            .field("last_reason", &self.last_reason)
            .finish_non_exhaustive()
    }
}

impl ProcCtx {
    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.handle.now()
    }

    /// The simulation handle (notify, spawn, ...).
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// The reason the most recent wait completed.
    pub fn last_wake_reason(&self) -> WakeReason {
        self.last_reason
    }

    fn suspend(&mut self, spec: WaitSpec) -> WakeReason {
        match self.shared.yield_to_kernel(Reply::Yielded(spec)) {
            Cmd::Run(reason) => {
                self.last_reason = reason;
                reason
            }
            Cmd::Terminate => raise_terminate(),
        }
    }

    /// Suspends for a duration of simulated time. A zero duration waits
    /// one delta cycle (SystemC `wait(SC_ZERO_TIME)`).
    pub fn wait_time(&mut self, d: SimTime) {
        self.suspend(WaitSpec::Time(d));
    }

    /// Suspends until `e` fires.
    pub fn wait_event(&mut self, e: EventId) {
        self.suspend(WaitSpec::Event(e));
    }

    /// Suspends until `e` fires or `timeout` elapses.
    pub fn wait_event_timeout(&mut self, e: EventId, timeout: SimTime) -> WaitOutcome {
        match self.suspend(WaitSpec::EventTimeout(e, timeout)) {
            WakeReason::Fired(_) => WaitOutcome::Fired,
            WakeReason::TimedOut => WaitOutcome::TimedOut,
            other => unreachable!("unexpected wake reason {other:?} for event-timeout wait"),
        }
    }

    /// Suspends until any of `events` fires; returns the one that did.
    pub fn wait_any(&mut self, events: &[EventId]) -> EventId {
        match self.suspend(WaitSpec::AnyEvent(events.to_vec())) {
            WakeReason::Fired(e) => e,
            other => unreachable!("unexpected wake reason {other:?} for any-event wait"),
        }
    }

    /// Suspends until every one of `events` has fired at least once.
    /// An empty list degenerates to one delta cycle.
    pub fn wait_all(&mut self, events: &[EventId]) {
        self.suspend(WaitSpec::AllEvents(events.to_vec()));
    }

    /// Gives up the processor until the next delta cycle.
    pub fn yield_delta(&mut self) {
        self.suspend(WaitSpec::YieldDelta);
    }

    /// Ends this process immediately, unwinding its stack (running
    /// `Drop` impls on the way out).
    pub fn exit(&mut self) -> ! {
        raise_terminate()
    }
}

/// Context passed to method-process callbacks.
pub struct MethodCtx {
    handle: SimHandle,
    id: ProcId,
    triggered_by: Option<EventId>,
}

impl std::fmt::Debug for MethodCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MethodCtx")
            .field("id", &self.id)
            .field("triggered_by", &self.triggered_by)
            .finish_non_exhaustive()
    }
}

impl MethodCtx {
    /// This method process's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.handle.now()
    }

    /// The simulation handle (notify, spawn, ...).
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// The event that triggered this activation (`None` for the initial
    /// run-at-start activation).
    pub fn triggered_by(&self) -> Option<EventId> {
        self.triggered_by
    }
}

enum Runner {
    Thread(Arc<ProcShared>, WakeReason),
    Method(Box<dyn FnMut(&mut MethodCtx) + Send>, Option<EventId>),
    Skip,
}

/// The scheduler main loop.
fn run_kernel(k: &Arc<Kernel>, limit: SimTime) -> RunOutcome {
    {
        let mut st = k.st.lock();
        assert!(!st.in_run, "Simulation::run_* is not reentrant");
        st.in_run = true;
    }
    let outcome = run_kernel_inner(k, limit);
    k.st.lock().in_run = false;
    match outcome {
        Ok(o) => o,
        Err(payload) => {
            panic::resume_unwind(payload);
        }
    }
}

fn run_kernel_inner(
    k: &Arc<Kernel>,
    limit: SimTime,
) -> Result<RunOutcome, Box<dyn std::any::Any + Send>> {
    let mut deltas_this_step: u64 = 0;
    loop {
        // ---- Evaluate phase -------------------------------------------------
        loop {
            let (pid, runner) = {
                let mut st = k.st.lock();
                let Some(pid) = st.runnable.pop_front() else {
                    break;
                };
                let entry = &mut st.procs[pid.index()];
                let runner = match (&mut entry.body, entry.state) {
                    (_, ProcState::Finished) => Runner::Skip,
                    (ProcBody::Thread { shared, .. }, ProcState::Ready) => {
                        entry.state = ProcState::Running;
                        let reason = entry.pending_reason;
                        Runner::Thread(Arc::clone(shared), reason)
                    }
                    (
                        ProcBody::Method {
                            callback,
                            queued,
                            trigger,
                        },
                        _,
                    ) => {
                        *queued = false;
                        let trig = trigger.take();
                        match callback.take() {
                            Some(cb) => Runner::Method(cb, trig),
                            None => Runner::Skip,
                        }
                    }
                    _ => Runner::Skip,
                };
                if !matches!(runner, Runner::Skip) {
                    st.current = Some(pid);
                    st.stats.process_runs += 1;
                    if let Some(t) = &st.tracer {
                        let name = st.procs[pid.index()].name.clone();
                        t.process_dispatched(st.now, pid, &name);
                    }
                }
                (pid, runner)
            };
            match runner {
                Runner::Skip => continue,
                Runner::Thread(shared, reason) => {
                    let reply = shared.resume(Cmd::Run(reason));
                    let mut st = k.st.lock();
                    st.current = None;
                    if let Some(t) = &st.tracer {
                        t.process_suspended(st.now, pid);
                    }
                    match reply {
                        Reply::Yielded(spec) => {
                            // The process may have been killed while running
                            // (not possible from another process, but a
                            // method it notified could conceptually do so);
                            // only re-register if still marked Running.
                            if st.procs[pid.index()].state == ProcState::Running {
                                st.register_wait(pid, spec);
                            }
                        }
                        Reply::Finished => st.finish_proc(pid),
                        Reply::Panicked(payload) => {
                            st.finish_proc(pid);
                            return Err(payload);
                        }
                    }
                }
                Runner::Method(mut cb, trig) => {
                    let mut ctx = MethodCtx {
                        handle: SimHandle { k: Arc::clone(k) },
                        id: pid,
                        triggered_by: trig,
                    };
                    let result = panic::catch_unwind(AssertUnwindSafe(|| cb(&mut ctx)));
                    let mut st = k.st.lock();
                    st.current = None;
                    if let Some(t) = &st.tracer {
                        t.process_suspended(st.now, pid);
                    }
                    if st.procs[pid.index()].state != ProcState::Finished {
                        if let ProcBody::Method { callback, .. } = &mut st.procs[pid.index()].body
                        {
                            *callback = Some(cb);
                        }
                    }
                    if let Err(payload) = result {
                        return Err(payload);
                    }
                }
            }
        }

        // ---- Update phase ---------------------------------------------------
        let updates = std::mem::take(&mut k.st.lock().updates);
        for u in &updates {
            if let Some(changed) = u.apply_update() {
                let mut st = k.st.lock();
                st.stats.signal_updates += 1;
                if let Some(t) = &st.tracer {
                    let (name, value) = u.describe();
                    t.signal_changed(st.now, &name, &value);
                }
                // Schedule the value-changed event for the delta-notify
                // phase (SystemC: signal updates notify in the next delta).
                let ev = &mut st.events[changed.index()];
                if ev.pending != Pending::Delta {
                    ev.gen += 1;
                    ev.pending = Pending::Delta;
                    st.delta_notified.push(changed);
                }
            }
        }

        // ---- Delta-notify phase ---------------------------------------------
        {
            let mut st = k.st.lock();
            let evs = std::mem::take(&mut st.delta_notified);
            for e in evs {
                if st.events[e.index()].pending == Pending::Delta {
                    st.fire_event(e);
                }
            }
            while let Some(p) = st.next_delta_runnable.pop_front() {
                if st.procs[p.index()].state == ProcState::Waiting {
                    st.wake(p, WakeReason::Yielded);
                }
            }
            if !st.runnable.is_empty() {
                st.stats.delta_cycles += 1;
                deltas_this_step += 1;
                if let Some(t) = &st.tracer {
                    t.delta_cycle(st.now, deltas_this_step);
                }
                if deltas_this_step > st.max_deltas_per_timestep {
                    return Ok(RunOutcome::DeltaLimitExceeded);
                }
                continue;
            }
        }

        // ---- Advance-time phase ---------------------------------------------
        {
            let mut st = k.st.lock();
            deltas_this_step = 0;
            let at = loop {
                match st.timed.peek() {
                    None => {
                        return Ok(RunOutcome::Starved);
                    }
                    Some(Reverse(entry)) => {
                        if entry.at > limit {
                            let old = st.now;
                            st.now = limit;
                            if old != limit {
                                st.stats.time_advances += 1;
                                if let Some(t) = &st.tracer {
                                    t.time_advanced(old, limit);
                                }
                            }
                            return Ok(RunOutcome::ReachedLimit);
                        }
                        break entry.at;
                    }
                }
            };
            let old = st.now;
            st.now = at;
            if old != at {
                st.stats.time_advances += 1;
                if let Some(t) = &st.tracer {
                    t.time_advanced(old, at);
                }
            }
            // Deliver every action scheduled for this timestamp.
            while let Some(Reverse(entry)) = st.timed.peek() {
                if entry.at != at {
                    break;
                }
                let Reverse(entry) = st.timed.pop().expect("peeked entry exists");
                match entry.action {
                    TimedAction::FireEvent { event, gen } => {
                        if st.events[event.index()].gen == gen {
                            st.fire_event(event);
                        }
                    }
                    TimedAction::WakeProc { proc, gen } => {
                        let pe = &st.procs[proc.index()];
                        if pe.wait_gen == gen && pe.state == ProcState::Waiting {
                            let reason = match pe.wait_kind {
                                WaitKind::EventTimeout => WakeReason::TimedOut,
                                _ => WakeReason::TimeElapsed,
                            };
                            st.wake(proc, reason);
                        }
                    }
                }
            }
        }
    }
}
