//! The pooled process runtime.
//!
//! Every thread process needs an OS thread for its stack, but a farm
//! campaign builds thousands of short-lived simulations — paying a
//! `thread::spawn` + `join` per process per scenario dominated
//! campaign start-up cost. The `ProcPool` recycles workers instead:
//! a finished process's thread parks in the pool and the next
//! `spawn_thread` (from *any* simulation in the same OS process)
//! leases it with a boxed job, skipping the kernel-level spawn.
//!
//! Isolation between occupants is structural: every process owns a
//! fresh `ProcShared` (see `crate::process`), so a recycled worker can never
//! observe the previous occupant's baton state. The only residue a
//! worker can carry is a stale parker token, which the baton protocol
//! absorbs by design (token-gated wait loops). Jobs run under
//! `catch_unwind`, so a panicking process body (already caught by the
//! kernel wrapper) or a defect in the wrapper itself cannot poison the
//! worker for the next occupant.
//!
//! The global pool is process-wide and unbounded in-flight; idle
//! workers beyond `MAX_IDLE` exit instead of re-enlisting, bounding
//! the parked-thread footprint after a large campaign drains.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, OnceLock};
use std::thread;

use parking_lot::Mutex;

/// A leased unit of work: the whole lifetime of one thread process.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Idle workers kept parked after a burst; the excess exits.
const MAX_IDLE: usize = 512;

/// Counters of the pooled process runtime (monotonic since process
/// start; see [`stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// OS threads ever spawned by the pool.
    pub threads_spawned: u64,
    /// Jobs (process lifetimes) executed.
    pub jobs_run: u64,
    /// Jobs served by a recycled worker instead of a fresh thread.
    pub jobs_recycled: u64,
    /// Workers currently parked waiting for a job.
    pub idle_now: usize,
}

struct Inner {
    idle: Mutex<Vec<Sender<Job>>>,
    threads_spawned: AtomicU64,
    jobs_run: AtomicU64,
    jobs_recycled: AtomicU64,
    max_idle: usize,
}

/// A recycling thread pool for process bodies. One global instance
/// backs every simulation; tests construct private pools for
/// deterministic reuse assertions.
pub(crate) struct ProcPool {
    inner: Arc<Inner>,
}

impl ProcPool {
    pub(crate) fn new(max_idle: usize) -> Self {
        ProcPool {
            inner: Arc::new(Inner {
                idle: Mutex::new(Vec::new()),
                threads_spawned: AtomicU64::new(0),
                jobs_run: AtomicU64::new(0),
                jobs_recycled: AtomicU64::new(0),
                max_idle,
            }),
        }
    }

    /// Runs `job` on a recycled worker when one is parked, else on a
    /// freshly spawned thread that will enlist itself afterwards.
    pub(crate) fn execute(&self, job: Job) {
        self.inner.jobs_run.fetch_add(1, Ordering::Relaxed);
        let leased = self.inner.idle.lock().pop();
        match leased {
            Some(tx) => match tx.send(job) {
                Ok(()) => {
                    self.inner.jobs_recycled.fetch_add(1, Ordering::Relaxed);
                }
                // The worker died between enlisting and the lease
                // (cannot happen with the catch_unwind harness, but
                // fall back rather than lose the job).
                Err(send_err) => self.spawn_worker(Some(send_err.0)),
            },
            None => self.spawn_worker(Some(job)),
        }
    }

    /// Spawns `n` idle workers up front so a campaign's first wave of
    /// scenarios doesn't pay thread-creation latency.
    pub(crate) fn prewarm(&self, n: usize) {
        let idle = self.inner.idle.lock().len();
        for _ in idle..n.min(self.inner.max_idle) {
            self.spawn_worker(None);
        }
    }

    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            threads_spawned: self.inner.threads_spawned.load(Ordering::Relaxed),
            jobs_run: self.inner.jobs_run.load(Ordering::Relaxed),
            jobs_recycled: self.inner.jobs_recycled.load(Ordering::Relaxed),
            idle_now: self.inner.idle.lock().len(),
        }
    }

    fn spawn_worker(&self, first: Option<Job>) {
        let n = self.inner.threads_spawned.fetch_add(1, Ordering::Relaxed);
        let inner = Arc::clone(&self.inner);
        thread::Builder::new()
            .name(format!("sysc:pool-{n}"))
            .stack_size(1 << 20)
            .spawn(move || worker_loop(&inner, first))
            .expect("failed to spawn pool worker thread");
    }
}

fn worker_loop(inner: &Inner, first: Option<Job>) {
    let (tx, rx) = channel::<Job>();
    if let Some(job) = first {
        run_job(job);
    }
    loop {
        {
            let mut idle = inner.idle.lock();
            if idle.len() >= inner.max_idle {
                return; // enough parked capacity; let this thread exit
            }
            idle.push(tx.clone());
        }
        // The sender we just enlisted guarantees exactly one matching
        // `send`; `recv` cannot disconnect before it arrives.
        let Ok(job) = rx.recv() else { return };
        run_job(job);
    }
}

fn run_job(job: Job) {
    // Process-body panics are already converted to replies by the
    // kernel wrapper; this outer net only guards the harness itself so
    // a defect can never leak a poisoned worker back into the pool.
    let _ = panic::catch_unwind(AssertUnwindSafe(job));
}

fn global() -> &'static ProcPool {
    static GLOBAL: OnceLock<ProcPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ProcPool::new(MAX_IDLE))
}

/// Runs a job on the global pool (the `spawn_thread` backend).
pub(crate) fn execute(job: Job) {
    global().execute(job);
}

/// Pre-spawns up to `n` idle workers on the global pool so the first
/// wave of simulations doesn't pay thread-creation latency. Idempotent:
/// existing idle workers count toward `n`.
pub fn prewarm(n: usize) {
    global().prewarm(n);
}

/// Counters of the global pooled process runtime.
pub fn stats() -> PoolStats {
    global().stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread::ThreadId;
    use std::time::Duration;

    /// Runs a probe job on `pool` and reports the worker's thread id.
    fn probe(pool: &ProcPool) -> ThreadId {
        let (tx, rx) = mpsc::channel();
        pool.execute(Box::new(move || {
            tx.send(thread::current().id()).unwrap();
        }));
        rx.recv_timeout(Duration::from_secs(10)).unwrap()
    }

    /// Polls until the pool reports `n` idle workers (a finished job
    /// re-enlists asynchronously).
    fn wait_idle(pool: &ProcPool, n: usize) {
        for _ in 0..1000 {
            if pool.stats().idle_now >= n {
                return;
            }
            thread::sleep(Duration::from_millis(1));
        }
        panic!("worker never re-enlisted (idle={})", pool.stats().idle_now);
    }

    #[test]
    fn workers_are_recycled() {
        let pool = ProcPool::new(8);
        let a = probe(&pool);
        wait_idle(&pool, 1);
        let b = probe(&pool);
        assert_eq!(a, b, "second job must reuse the parked worker");
        let s = pool.stats();
        assert_eq!(s.threads_spawned, 1);
        assert_eq!(s.jobs_run, 2);
        assert_eq!(s.jobs_recycled, 1);
    }

    #[test]
    fn panicking_job_does_not_poison_the_worker() {
        let pool = ProcPool::new(8);
        let a = probe(&pool);
        wait_idle(&pool, 1);
        pool.execute(Box::new(|| panic!("job panic")));
        wait_idle(&pool, 1);
        let b = probe(&pool);
        assert_eq!(a, b, "worker must survive a panicking job");
        assert_eq!(pool.stats().jobs_recycled, 2);
    }

    #[test]
    fn prewarm_spawns_idle_workers() {
        let pool = ProcPool::new(8);
        pool.prewarm(3);
        wait_idle(&pool, 3);
        assert_eq!(pool.stats().threads_spawned, 3);
        // Prewarm is idempotent given existing idle capacity.
        pool.prewarm(3);
        assert_eq!(pool.stats().threads_spawned, 3);
        // And clamped by max_idle.
        pool.prewarm(100);
        wait_idle(&pool, 8);
        assert_eq!(pool.stats().threads_spawned, 8);
    }

    /// A burst far above the idle cap must drain back to exactly
    /// `max_idle` parked workers: the excess exits instead of parking
    /// forever (the post-campaign footprint bound).
    #[test]
    fn idle_cap_evicts_excess_after_burst() {
        let pool = ProcPool::new(2);
        let barrier = Arc::new(std::sync::Barrier::new(9));
        for _ in 0..8 {
            let b = Arc::clone(&barrier);
            pool.execute(Box::new(move || {
                b.wait();
            }));
        }
        barrier.wait();
        assert_eq!(pool.stats().threads_spawned, 8);
        wait_idle(&pool, 2);
        // Give the evicted workers time to observe the cap and exit;
        // none may sneak past it.
        thread::sleep(Duration::from_millis(30));
        assert_eq!(
            pool.stats().idle_now,
            2,
            "excess workers must exit, not park"
        );
    }

    /// Jobs submitted while a prewarm is still enlisting workers (the
    /// shape of a simulation tearing down — terminating processes —
    /// during campaign warm-up) must all run exactly once: a lease can
    /// race a worker's enlist, but never lose or duplicate a job.
    #[test]
    fn execute_racing_prewarm_never_loses_jobs() {
        let pool = ProcPool::new(16);
        let warmer = {
            let p = ProcPool {
                inner: Arc::clone(&pool.inner),
            };
            thread::spawn(move || {
                for _ in 0..4 {
                    p.prewarm(8);
                    thread::yield_now();
                }
            })
        };
        let (tx, rx) = mpsc::channel();
        for i in 0..32u32 {
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                tx.send(i).unwrap();
            }));
        }
        drop(tx);
        let mut seen: Vec<u32> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
        warmer.join().unwrap();
        wait_idle(&pool, 1);
        // Once everything drains, the parked set respects the cap.
        thread::sleep(Duration::from_millis(30));
        assert!(pool.stats().idle_now <= 16);
        assert_eq!(pool.stats().jobs_run, 32);
    }

    #[test]
    fn idle_cap_bounds_reenlisting() {
        let pool = ProcPool::new(1);
        // Two overlapping jobs force two spawns; only one may re-enlist.
        let barrier = Arc::new(std::sync::Barrier::new(3));
        for _ in 0..2 {
            let b = Arc::clone(&barrier);
            pool.execute(Box::new(move || {
                b.wait();
            }));
        }
        barrier.wait();
        assert_eq!(pool.stats().threads_spawned, 2);
        wait_idle(&pool, 1);
        // Give the second worker time to observe the cap and exit.
        thread::sleep(Duration::from_millis(20));
        assert_eq!(pool.stats().idle_now, 1);
    }
}
