//! Signals and clocks with SystemC update-phase semantics.
//!
//! A [`Signal`] holds a current value readable by any process. Writes go
//! to a *next* slot and are applied in the kernel's update phase; if the
//! value actually changed, the signal's `value_changed_event` is notified
//! in the following delta cycle. This is exactly `sc_signal`'s
//! request-update/update protocol, which the paper's BFM relies on for
//! race-free hardware modeling.

use std::fmt::Debug;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ids::EventId;
use crate::kernel::SimHandle;
use crate::time::SimTime;

/// Values that can live in a [`Signal`].
///
/// The `vcd_value` rendering is used by waveform tracers (Fig. 4 of the
/// paper); the default renders via `Debug`.
pub trait SignalValue: Clone + PartialEq + Debug + Send + 'static {
    /// VCD-style value rendering (e.g. `1`/`0` for bool, `b1010` for
    /// integers).
    fn vcd_value(&self) -> String {
        format!("{self:?}")
    }
}

impl SignalValue for bool {
    fn vcd_value(&self) -> String {
        if *self { "1" } else { "0" }.to_string()
    }
}

macro_rules! impl_signal_value_int {
    ($($t:ty),*) => {$(
        impl SignalValue for $t {
            fn vcd_value(&self) -> String {
                format!("b{:b}", self)
            }
        }
    )*};
}

impl_signal_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SignalValue for char {}
impl SignalValue for String {}

/// Type-erased hook the kernel calls during the update phase.
pub(crate) trait UpdateTarget: Send + Sync {
    /// Applies the pending write; returns the value-changed event if the
    /// value actually changed.
    fn apply_update(&self) -> Option<EventId>;
    /// `(name, current value)` for tracing, called only after a change.
    fn describe(&self) -> (String, String);
}

struct SignalInner<T: SignalValue> {
    name: String,
    current: Mutex<T>,
    next: Mutex<Option<T>>,
    changed_event: EventId,
}

impl<T: SignalValue> UpdateTarget for SignalInner<T> {
    fn apply_update(&self) -> Option<EventId> {
        let next = self.next.lock().take();
        if let Some(v) = next {
            let mut cur = self.current.lock();
            if *cur != v {
                *cur = v;
                return Some(self.changed_event);
            }
        }
        None
    }

    fn describe(&self) -> (String, String) {
        (self.name.clone(), self.current.lock().vcd_value())
    }
}

/// A `sc_signal`-like channel: read anywhere, writes take effect in the
/// next update phase, changes notify an event one delta later.
///
/// # Examples
///
/// ```
/// use sysc::{Simulation, Signal, SimTime, SpawnMode};
///
/// let mut sim = Simulation::new();
/// let h = sim.handle();
/// let sig: Signal<u32> = Signal::new(&h, "bus", 0);
/// let watcher_saw = h.create_event("saw");
/// let s = sig.clone();
/// h.spawn_thread("watch", SpawnMode::Immediate, move |ctx| {
///     ctx.wait_event(s.value_changed_event());
///     assert_eq!(s.read(), 42);
///     ctx.handle().notify(watcher_saw);
/// });
/// let s2 = sig.clone();
/// h.spawn_thread("drive", SpawnMode::Immediate, move |ctx| {
///     ctx.wait_time(SimTime::from_ns(10));
///     s2.write(42);
/// });
/// sim.run_to_completion();
/// assert_eq!(sim.handle().event_fire_count(watcher_saw), 1);
/// ```
pub struct Signal<T: SignalValue> {
    inner: Arc<SignalInner<T>>,
    handle: SimHandle,
}

impl<T: SignalValue> Clone for Signal<T> {
    fn clone(&self) -> Self {
        Signal {
            inner: Arc::clone(&self.inner),
            handle: self.handle.clone(),
        }
    }
}

impl<T: SignalValue> Debug for Signal<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Signal")
            .field("name", &self.inner.name)
            .field("value", &*self.inner.current.lock())
            .finish()
    }
}

impl<T: SignalValue> Signal<T> {
    /// Creates a signal with an initial value.
    pub fn new(handle: &SimHandle, name: &str, init: T) -> Self {
        let changed_event = handle.create_event(&format!("{name}.changed"));
        Signal {
            inner: Arc::new(SignalInner {
                name: name.to_string(),
                current: Mutex::new(init),
                next: Mutex::new(None),
                changed_event,
            }),
            handle: handle.clone(),
        }
    }

    /// The signal's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Current value (as of the last completed update phase).
    pub fn read(&self) -> T {
        self.inner.current.lock().clone()
    }

    /// Schedules a write for the next update phase.
    pub fn write(&self, value: T) {
        let mut next = self.inner.next.lock();
        let first_request = next.is_none();
        *next = Some(value);
        drop(next);
        if first_request {
            self.handle
                .request_update(Arc::clone(&self.inner) as Arc<dyn UpdateTarget>);
        }
    }

    /// Event notified (one delta after the update phase) whenever the
    /// value changes.
    pub fn value_changed_event(&self) -> EventId {
        self.inner.changed_event
    }
}

/// A periodic clock built on an auto-renotifying event.
///
/// `tick_event` fires every `period`, starting `first_after` from the
/// moment of creation. The paper's BFM uses one of these as the real-time
/// clock driving the kernel's central module (1 ms default resolution).
#[derive(Debug, Clone)]
pub struct Clock {
    tick: EventId,
    period: SimTime,
    name: String,
}

impl Clock {
    /// Creates and starts a periodic clock.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(handle: &SimHandle, name: &str, period: SimTime, first_after: SimTime) -> Self {
        let tick = handle.create_event(&format!("{name}.tick"));
        handle.make_periodic(tick, period, first_after);
        Clock {
            tick,
            period,
            name: name.to_string(),
        }
    }

    /// The event that fires once per period.
    pub fn tick_event(&self) -> EventId {
        self.tick
    }

    /// The clock period.
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// The clock's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stops the clock (no further ticks after any pending one).
    pub fn stop(&self, handle: &SimHandle) {
        handle.stop_periodic(self.tick);
        handle.cancel(self.tick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Simulation, SpawnMode};

    #[test]
    fn signal_updates_in_update_phase_not_immediately() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let sig: Signal<u32> = Signal::new(&h, "s", 7);
        let s = sig.clone();
        let checked = h.create_event("checked");
        h.spawn_thread("p", SpawnMode::Immediate, move |ctx| {
            s.write(9);
            // Write not visible until the update phase.
            assert_eq!(s.read(), 7);
            ctx.yield_delta();
            assert_eq!(s.read(), 9);
            ctx.handle().notify(checked);
        });
        sim.run_to_completion();
        assert_eq!(sim.handle().event_fire_count(checked), 1);
    }

    #[test]
    fn last_write_in_a_delta_wins() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let sig: Signal<u32> = Signal::new(&h, "s", 0);
        let s = sig.clone();
        h.spawn_thread("p", SpawnMode::Immediate, move |ctx| {
            s.write(1);
            s.write(2);
            s.write(3);
            ctx.yield_delta();
            assert_eq!(s.read(), 3);
        });
        sim.run_to_completion();
    }

    #[test]
    fn no_change_no_event() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let sig: Signal<bool> = Signal::new(&h, "s", true);
        let s = sig.clone();
        h.spawn_thread("p", SpawnMode::Immediate, move |ctx| {
            s.write(true); // same value: no value-changed notification
            ctx.wait_time(SimTime::from_ns(5));
        });
        sim.run_to_completion();
        assert_eq!(sim.handle().event_fire_count(sig.value_changed_event()), 0);
    }

    #[test]
    fn clock_ticks_periodically() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let clk = Clock::new(&h, "clk", SimTime::from_ms(1), SimTime::from_ms(1));
        sim.run_until(SimTime::from_ms(10));
        assert_eq!(sim.handle().event_fire_count(clk.tick_event()), 10);
        assert_eq!(clk.period(), SimTime::from_ms(1));
    }

    #[test]
    fn clock_stop_halts_ticks() {
        let mut sim = Simulation::new();
        let h = sim.handle();
        let clk = Clock::new(&h, "clk", SimTime::from_ms(1), SimTime::from_ms(1));
        sim.run_until(SimTime::from_ms(3));
        clk.stop(&sim.handle());
        sim.run_until(SimTime::from_ms(10));
        assert_eq!(sim.handle().event_fire_count(clk.tick_event()), 3);
    }

    #[test]
    fn vcd_value_renderings() {
        assert_eq!(true.vcd_value(), "1");
        assert_eq!(false.vcd_value(), "0");
        assert_eq!(5u8.vcd_value(), "b101");
        assert_eq!(10u32.vcd_value(), "b1010");
        assert_eq!('x'.vcd_value(), "'x'");
    }
}
