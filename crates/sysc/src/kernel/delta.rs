//! The evaluate/update/delta-notify queues of one timestep.
//!
//! Groups everything that cycles once per delta: the runnable queue fed
//! by wakes and notifications, the next-delta runnable queue (yields),
//! the list of events with a pending delta notification, and the
//! request-update targets of the signal infrastructure.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::ids::{EventId, ProcId};
use crate::signal::UpdateTarget;

#[derive(Default)]
pub(crate) struct DeltaQueues {
    /// Processes to dispatch in the current evaluation phase (FIFO).
    pub(crate) runnable: VecDeque<ProcId>,
    /// Processes that yielded and become runnable at the next delta.
    pub(crate) next_delta_runnable: VecDeque<ProcId>,
    /// Events with a pending delta notification.
    pub(crate) delta_notified: Vec<EventId>,
    /// Signal update requests for the next update phase.
    pub(crate) updates: Vec<Arc<dyn UpdateTarget>>,
}

impl DeltaQueues {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}
