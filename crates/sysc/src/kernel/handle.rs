//! [`SimHandle`] — the cloneable notification/creation handle — and
//! the batched-notification APIs ([`SimHandle::notify_many`],
//! [`NotifyBatch`]).

use std::panic;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::ids::{EventId, ProcId};
use crate::runtime::{reply_from_panic, Cmd, Reply, RtShared};
use crate::signal::UpdateTarget;
use crate::time::SimTime;
use crate::trace::KernelStats;

use super::procs::{MethodSlot, ProcBody, ProcEntry, ProcState, WaitKind};
use super::sched::{EventEntry, Pending};
use super::{Kernel, MethodCtx, ProcCtx, SpawnMode};

/// Cloneable handle to a simulation: event/process creation and
/// notification. Usable from the embedding code and from inside process
/// bodies.
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) k: Arc<Kernel>,
}

impl std::fmt::Debug for SimHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimHandle").finish_non_exhaustive()
    }
}

impl SimHandle {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.k.st.lock().now
    }

    /// Kernel activity counters.
    pub fn stats(&self) -> KernelStats {
        self.k.st.lock().stats
    }

    /// Creates a named event.
    pub fn create_event(&self, name: &str) -> EventId {
        let mut st = self.k.st.lock();
        let id = EventId(st.events.len() as u32);
        st.events.push(EventEntry::new(name));
        id
    }

    /// Immediate notification: fires now, waking waiters into the current
    /// evaluation phase. Overrides (cancels) any pending notification.
    pub fn notify(&self, e: EventId) {
        self.k.st.lock().notify_now_locked(e);
    }

    /// Immediately notifies several events under a single kernel-lock
    /// acquisition, in order. Equivalent to calling
    /// [`SimHandle::notify`] for each, minus the per-event locking —
    /// the dispatch fast path for models that fan one hardware action
    /// out to several events.
    pub fn notify_many(&self, events: &[EventId]) {
        if events.is_empty() {
            return;
        }
        let mut st = self.k.st.lock();
        for &e in events {
            st.notify_now_locked(e);
        }
    }

    /// Starts a deferred notification batch: notifications recorded on
    /// the batch are published by [`NotifyBatch::commit`] (or drop)
    /// under one kernel-lock acquisition.
    ///
    /// # Examples
    ///
    /// ```
    /// use sysc::{Simulation, SimTime};
    ///
    /// let sim = Simulation::new();
    /// let h = sim.handle();
    /// let a = h.create_event("a");
    /// let b = h.create_event("b");
    /// let mut batch = h.batch();
    /// batch.notify(a);
    /// batch.notify_after(b, SimTime::from_us(10));
    /// batch.commit();
    /// assert_eq!(h.event_fire_count(a), 1);
    /// ```
    pub fn batch(&self) -> NotifyBatch {
        NotifyBatch {
            h: self.clone(),
            ops: Vec::new(),
        }
    }

    /// Delta notification: fires in the next delta cycle. Overrides a
    /// pending timed notification; keeps an existing delta notification.
    pub fn notify_delta(&self, e: EventId) {
        self.k.st.lock().notify_delta_locked(e);
    }

    /// Timed notification after `delay`. Follows the `sc_event` override
    /// rule: an earlier pending notification wins; a later one is
    /// replaced. A zero delay degenerates to a delta notification.
    pub fn notify_after(&self, e: EventId, delay: SimTime) {
        self.k.st.lock().notify_after_locked(e, delay);
    }

    /// Cancels any pending (delta or timed) notification.
    pub fn cancel(&self, e: EventId) {
        let mut st = self.k.st.lock();
        let ev = &mut st.events[e.index()];
        ev.gen += 1;
        ev.pending = Pending::None;
    }

    /// Turns the event into a periodic clock: after each firing it
    /// re-notifies itself `period` later. The first firing is scheduled
    /// `first_after` from now. Re-arming is an O(1) timing-wheel
    /// insert, not a heap push.
    pub fn make_periodic(&self, e: EventId, period: SimTime, first_after: SimTime) {
        assert!(!period.is_zero(), "periodic event needs a non-zero period");
        let mut st = self.k.st.lock();
        st.events[e.index()].auto_renotify = Some(period);
        st.notify_after_locked(e, first_after);
    }

    /// Stops the periodic re-notification of an event (the currently
    /// pending firing, if any, still happens unless cancelled).
    pub fn stop_periodic(&self, e: EventId) {
        self.k.st.lock().events[e.index()].auto_renotify = None;
    }

    /// Number of times the event has fired.
    pub fn event_fire_count(&self, e: EventId) -> u64 {
        self.k.st.lock().events[e.index()].fire_count
    }

    /// The event's name.
    pub fn event_name(&self, e: EventId) -> String {
        self.k.st.lock().events[e.index()].name.clone()
    }

    /// The process's name.
    pub fn proc_name(&self, p: ProcId) -> String {
        self.k.st.lock().procs.get(p).name.clone()
    }

    /// Whether the process has finished (returned or been killed).
    pub fn is_finished(&self, p: ProcId) -> bool {
        self.k.st.lock().procs.get(p).state == ProcState::Finished
    }

    /// Spawns a thread process. The body runs on a context leased from
    /// the active runtime — a pooled OS thread under the baton protocol
    /// ([`crate::pool`]), or a stackful coroutine on a recycled heap
    /// stack ([`crate::runtime`]) — and may suspend anywhere via
    /// [`ProcCtx`]. Either way the backing context is recycled when the
    /// body finishes, so campaigns of many short simulations stop
    /// paying a spawn/join (or stack allocation) per process.
    pub fn spawn_thread<F>(&self, name: &str, mode: SpawnMode, body: F) -> ProcId
    where
        F: FnOnce(&mut ProcCtx) + Send + 'static,
    {
        let shared = self.k.rt.new_proc_shared();
        let id = {
            let mut st = self.k.st.lock();
            st.procs.push(ProcEntry::new_thread(name, shared.clone()))
        };
        launch(shared, self.clone(), id, body);
        let mut st = self.k.st.lock();
        match mode {
            SpawnMode::Immediate => st.dq.runnable.push_back(id),
            SpawnMode::WaitEvent(e) => {
                let gen = {
                    let pe = st.procs.get_mut(id);
                    pe.state = ProcState::Waiting;
                    pe.wait_kind = WaitKind::Event;
                    pe.wait_gen += 1;
                    pe.wait_gen
                };
                st.events[e.index()].waiters.push((id, gen));
            }
        }
        id
    }

    /// Spawns a method process statically sensitive to `sensitivity`.
    /// The callback runs on the kernel thread (no stack switch); it must
    /// not block. If `run_at_start`, it is also queued once immediately.
    pub fn spawn_method<F>(
        &self,
        name: &str,
        sensitivity: &[EventId],
        run_at_start: bool,
        callback: F,
    ) -> ProcId
    where
        F: FnMut(&mut MethodCtx) + Send + 'static,
    {
        let slot = MethodSlot::new(Box::new(callback));
        let mut st = self.k.st.lock();
        let id = st
            .procs
            .push(ProcEntry::new_method(name, slot, run_at_start));
        for e in sensitivity {
            st.events[e.index()].method_subs.push(id);
        }
        if run_at_start {
            st.dq.runnable.push_back(id);
        }
        id
    }

    /// Terminates another process: its stack unwinds (running `Drop`
    /// impls) and it never runs again. Method processes are simply
    /// descheduled (their callback is dropped).
    ///
    /// # Panics
    ///
    /// Panics if `p` is the currently running process — a process exits
    /// itself with [`ProcCtx::exit`] instead.
    pub fn kill(&self, p: ProcId) {
        assert!(
            self.k.current.load(Ordering::Relaxed) != p.index() as u32,
            "a process cannot kill itself; use ProcCtx::exit"
        );
        enum Victim {
            Thread(RtShared),
            Method(Arc<MethodSlot>),
        }
        let victim = {
            let mut st = self.k.st.lock();
            if st.procs.get(p).state == ProcState::Finished {
                return;
            }
            st.procs.get_mut(p).finish();
            match &st.procs.get(p).body {
                ProcBody::Thread { shared, .. } => Victim::Thread(shared.clone()),
                ProcBody::Method { slot, .. } => Victim::Method(Arc::clone(slot)),
            }
        };
        match victim {
            Victim::Thread(s) => {
                // Cooperative unwind; reply is Finished (or Panicked from
                // a misbehaving Drop, which we surface).
                if let Reply::Panicked(payload) = s.resume(Cmd::Terminate) {
                    panic::resume_unwind(payload)
                }
            }
            // Drop the callback so a queued activation is a no-op.
            Victim::Method(slot) => drop(slot.cb.lock().take()),
        }
    }

    /// Queues an update target for the next update phase (signal
    /// infrastructure; see [`crate::Signal`]).
    pub(crate) fn request_update(&self, target: Arc<dyn UpdateTarget>) {
        self.k.st.lock().dq.updates.push(target);
    }
}

/// Hands a spawned process body to its runtime backend.
///
/// Both wrappers are the same lifetime: first command → body under
/// `catch_unwind` → finish path (reply through the terminate handshake
/// when a kill/teardown is waiting, chained finish bookkeeping
/// otherwise). They differ only in *when* the transfer happens: the
/// threaded wrapper performs it (it runs on its own OS thread), while
/// the coro wrapper **returns** it as a [`Terminal`] so the final
/// context switch executes after the wrapper frame — and every `Arc`
/// it held — is gone (see [`crate::runtime::coro`] on leak-free
/// teardown).
fn launch<F>(shared: RtShared, handle: SimHandle, id: ProcId, body: F)
where
    F: FnOnce(&mut ProcCtx) + Send + 'static,
{
    match shared {
        RtShared::Threaded(_) => {
            let shared2 = shared;
            crate::pool::execute(Box::new(move || match shared2.await_cmd() {
                // Terminated before first activation: reply through the
                // baton (the terminator is waiting on it).
                Cmd::Terminate => shared2.finish(Reply::Finished),
                Cmd::Run(reason) => {
                    let k = Arc::clone(&handle.k);
                    let mut ctx = ProcCtx {
                        handle,
                        shared: shared2.clone(),
                        id,
                        last_reason: reason,
                    };
                    let result = panic::catch_unwind(panic::AssertUnwindSafe(|| body(&mut ctx)));
                    drop(ctx);
                    let reply = match result {
                        Ok(()) => Reply::Finished,
                        Err(p) => reply_from_panic(p),
                    };
                    if shared2.is_terminating() {
                        // kill()/teardown wait on the baton for this reply.
                        shared2.finish(reply);
                    } else {
                        // Normal completion (including ProcCtx::exit): do
                        // the finish bookkeeping and continue the chain.
                        super::sched::finish_from_process(&k, id, &shared2, reply);
                    }
                }
            }));
        }
        #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
        RtShared::Coro(ref coro) => {
            use crate::runtime::coro::Terminal;
            let shared2 = shared.clone();
            coro.set_entry(Box::new(move || -> Terminal {
                let reason = match shared2.await_cmd() {
                    // Unreachable in practice (a terminate before first
                    // activation short-circuits in `resume` without
                    // starting the coroutine); kept for parity.
                    Cmd::Terminate => return Terminal::Link(Reply::Finished),
                    Cmd::Run(reason) => reason,
                };
                let k = Arc::clone(&handle.k);
                let mut ctx = ProcCtx {
                    handle,
                    shared: shared2.clone(),
                    id,
                    last_reason: reason,
                };
                let result = panic::catch_unwind(panic::AssertUnwindSafe(|| body(&mut ctx)));
                drop(ctx);
                let reply = match result {
                    Ok(()) => Reply::Finished,
                    Err(p) => reply_from_panic(p),
                };
                if shared2.is_terminating() {
                    // kill()/teardown regain control through the link.
                    Terminal::Link(reply)
                } else {
                    match super::sched::finish_step(&k, id, &shared2, reply) {
                        #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
                        Some((RtShared::Coro(next), reason)) => Terminal::Post(next, reason),
                        Some(_) => unreachable!("coro kernel produced a non-coro successor"),
                        None => Terminal::Gate,
                    }
                }
            }));
        }
    }
}

/// A deferred notification buffer: records notifications locally and
/// publishes them all under a single kernel-lock acquisition on
/// [`NotifyBatch::commit`] (or when dropped). Built by
/// [`SimHandle::batch`]; used by peripheral models that emit several
/// notifications per hardware action.
#[derive(Debug)]
pub struct NotifyBatch {
    h: SimHandle,
    ops: Vec<(EventId, BatchedNotify)>,
}

#[derive(Debug, Clone, Copy)]
enum BatchedNotify {
    Now,
    Delta,
    After(SimTime),
}

impl NotifyBatch {
    /// Records an immediate notification.
    pub fn notify(&mut self, e: EventId) {
        self.ops.push((e, BatchedNotify::Now));
    }

    /// Records a delta notification.
    pub fn notify_delta(&mut self, e: EventId) {
        self.ops.push((e, BatchedNotify::Delta));
    }

    /// Records a timed notification (`sc_event` override rule applies
    /// at commit time).
    pub fn notify_after(&mut self, e: EventId, delay: SimTime) {
        self.ops.push((e, BatchedNotify::After(delay)));
    }

    /// Number of recorded, uncommitted notifications.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Publishes all recorded notifications, in recording order, under
    /// one kernel-lock acquisition. The batch can be reused afterwards.
    pub fn commit(&mut self) {
        if self.ops.is_empty() {
            return;
        }
        let mut st = self.h.k.st.lock();
        for (e, op) in self.ops.drain(..) {
            match op {
                BatchedNotify::Now => st.notify_now_locked(e),
                BatchedNotify::Delta => st.notify_delta_locked(e),
                BatchedNotify::After(d) => st.notify_after_locked(e, d),
            }
        }
    }
}

impl Drop for NotifyBatch {
    fn drop(&mut self) {
        self.commit();
    }
}
