//! The hierarchical timing wheel backing the advance-time phase.
//!
//! Timed and periodic notifications used to live in one global
//! `BinaryHeap`, costing O(log n) per insert — paid once per clock tick
//! by every periodic event (the kernel systick, every BFM timer). The
//! wheel makes insertion O(1): 11 levels of 64 slots each, level *k*
//! covering spans of 64^(k+1) ps, which together cover the full `u64`
//! picosecond range of [`SimTime`].
//!
//! Discrete-event specifics (vs. a tick-driven wheel à la Linux/tokio):
//!
//! * [`TimingWheel::next_at`] returns the *exact* earliest deadline —
//!   the simulation jumps straight to it, so slot granularity never
//!   rounds a firing time;
//! * [`TimingWheel::advance_to`] pops everything due at-or-before the
//!   target, cascading higher-level slots down as `elapsed` moves;
//! * entries carry a monotonic sequence number so same-instant actions
//!   fire in insertion order (the determinism guarantee the old heap
//!   provided via its `(at, seq)` ordering);
//! * cancellation stays O(1) and external: stale entries are filtered
//!   by generation counters at delivery, exactly as with the heap.

/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels needed so that `LEVELS * LEVEL_BITS >= 64`.
const LEVELS: usize = 11;

/// A scheduled entry: an exact deadline, an insertion sequence number
/// (for same-instant FIFO ordering) and the caller's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEntry<T> {
    /// Absolute deadline (in the wheel's deadline unit).
    pub at: u64,
    /// Insertion order; unique per wheel.
    pub seq: u64,
    /// Caller payload (what to do when due).
    pub action: T,
}

/// A hierarchical timing wheel over absolute `u64` deadlines.
///
/// Deadline units are the caller's choice: the sysc event core uses
/// picoseconds ([`crate::SimTime::as_ps`]), while the RTOS layer reuses
/// the wheel for its tick-granular timer queue with tick counts as
/// deadlines. Generic over the scheduled payload.
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// Current position; no entry may be inserted strictly before it.
    elapsed: u64,
    /// Per-level bitmap of non-empty slots.
    occupied: [u64; LEVELS],
    /// `LEVELS * SLOTS` buckets, row-major by level.
    slots: Vec<Vec<TimedEntry<T>>>,
    /// Minimum deadline per bucket (valid only while the occupancy bit
    /// is set), so `next_at` never scans a bucket's entries.
    slot_min: Vec<u64>,
    /// Entries scheduled exactly at `elapsed` (zero-delta timeouts).
    immediate: Vec<TimedEntry<T>>,
    len: usize,
    seq: u64,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// An empty wheel positioned at time zero.
    pub fn new() -> Self {
        TimingWheel {
            elapsed: 0,
            occupied: [0; LEVELS],
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            slot_min: vec![u64::MAX; LEVELS * SLOTS],
            immediate: Vec::new(),
            len: 0,
            seq: 0,
        }
    }

    /// Number of pending entries (including ones a caller may consider
    /// logically cancelled).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's current position.
    pub fn elapsed(&self) -> u64 {
        self.elapsed
    }

    /// Schedules `action` at absolute time `at`, returning its sequence
    /// number. O(1). Deadlines at or before the current position go to
    /// an immediate bucket and are delivered by the next
    /// [`TimingWheel::advance_to`].
    pub fn insert(&mut self, at: u64, action: T) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.file(TimedEntry { at, seq, action });
        self.len += 1;
        seq
    }

    fn file(&mut self, entry: TimedEntry<T>) {
        if entry.at <= self.elapsed {
            self.immediate.push(entry);
            return;
        }
        let (level, slot) = self.position(entry.at);
        let idx = level * SLOTS + slot;
        if self.occupied[level] & (1 << slot) == 0 {
            self.occupied[level] |= 1 << slot;
            self.slot_min[idx] = entry.at;
        } else if entry.at < self.slot_min[idx] {
            self.slot_min[idx] = entry.at;
        }
        self.slots[idx].push(entry);
    }

    /// `(level, slot)` for a strictly-future deadline: the level is the
    /// highest bit group in which `at` differs from `elapsed`, so all
    /// bits above it agree and the slot index within the level is
    /// strictly ahead of the current position.
    fn position(&self, at: u64) -> (usize, usize) {
        debug_assert!(at > self.elapsed);
        let diff = at ^ self.elapsed;
        let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
        let slot = ((at >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    /// Absolute start time of an occupied slot (bits above the level are
    /// shared with `elapsed`, bits below are zeroed).
    fn slot_start(&self, level: usize, slot: usize) -> u64 {
        let shift = LEVEL_BITS * level as u32;
        let above = if level + 1 == LEVELS {
            0
        } else {
            self.elapsed >> (shift + LEVEL_BITS) << (shift + LEVEL_BITS)
        };
        above | ((slot as u64) << shift)
    }

    /// The earliest occupied `(level, slot, slot_start)`, by start time.
    fn earliest_slot(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for level in 0..LEVELS {
            if self.occupied[level] == 0 {
                continue;
            }
            let slot = self.occupied[level].trailing_zeros() as usize;
            let start = self.slot_start(level, slot);
            if best.is_none_or(|(_, _, s)| start < s) {
                best = Some((level, slot, start));
            }
        }
        best
    }

    /// The exact earliest pending deadline, if any. May belong to an
    /// entry the caller has logically cancelled (same contract as the
    /// old heap's `peek`).
    pub fn next_at(&self) -> Option<u64> {
        let mut best = self.immediate.iter().map(|e| e.at).min();
        for level in 0..LEVELS {
            if self.occupied[level] == 0 {
                continue;
            }
            let slot = self.occupied[level].trailing_zeros() as usize;
            let slot_min = self.slot_min[level * SLOTS + slot];
            if best.is_none_or(|b| slot_min < b) {
                best = Some(slot_min);
            }
        }
        best
    }

    /// Advances the wheel to `t`, appending every entry due at or
    /// before `t` to `due` in `(at, seq)` order. Higher-level slots
    /// entered along the way cascade down; not-yet-due entries are
    /// re-filed at finer levels.
    pub fn advance_to(&mut self, t: u64, due: &mut Vec<TimedEntry<T>>) {
        debug_assert!(t >= self.elapsed);
        let due_start = due.len();
        due.append(&mut self.immediate);
        while let Some((level, slot, start)) = self.earliest_slot() {
            if start > t {
                break;
            }
            self.occupied[level] &= !(1 << slot);
            let entries = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            // Move into the slot's range so re-filed entries land at a
            // finer level (or the immediate bucket when due).
            self.elapsed = self.elapsed.max(start);
            for e in entries {
                if e.at <= t {
                    due.push(e);
                } else {
                    self.file(e);
                }
            }
        }
        self.elapsed = self.elapsed.max(t);
        let drained = &mut due[due_start..];
        drained.sort_unstable_by_key(|e| (e.at, e.seq));
        self.len -= drained.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_until<T>(w: &mut TimingWheel<T>, t: u64) -> Vec<(u64, T)> {
        let mut due = Vec::new();
        w.advance_to(t, &mut due);
        due.into_iter().map(|e| (e.at, e.action)).collect()
    }

    #[test]
    fn fires_in_time_then_insertion_order() {
        let mut w = TimingWheel::new();
        w.insert(500, "b");
        w.insert(100, "a");
        w.insert(500, "c");
        assert_eq!(w.next_at(), Some(100));
        assert_eq!(drain_until(&mut w, 100), vec![(100, "a")]);
        assert_eq!(w.next_at(), Some(500));
        assert_eq!(drain_until(&mut w, 500), vec![(500, "b"), (500, "c")]);
        assert!(w.is_empty());
        assert_eq!(w.next_at(), None);
    }

    #[test]
    fn wide_spread_of_deadlines_cascades_correctly() {
        let mut w = TimingWheel::new();
        // Deadlines spanning 9 orders of magnitude.
        let times = [
            3u64,
            64,
            65,
            4_095,
            4_097,
            1_000_000,
            999_999_999,
            1_000_000_001,
            u64::from(u32::MAX) + 17,
        ];
        for (i, t) in times.iter().enumerate() {
            w.insert(*t, i);
        }
        let mut fired = Vec::new();
        while let Some(at) = w.next_at() {
            let batch = drain_until(&mut w, at);
            assert!(batch.iter().all(|(t, _)| *t == at));
            fired.extend(batch);
        }
        let mut expect = times
            .iter()
            .copied()
            .enumerate()
            .map(|(i, t)| (t, i))
            .collect::<Vec<_>>();
        expect.sort_unstable();
        assert_eq!(fired, expect);
    }

    #[test]
    fn at_or_before_elapsed_goes_to_immediate() {
        let mut w = TimingWheel::new();
        let mut due = Vec::new();
        w.advance_to(1000, &mut due);
        assert!(due.is_empty());
        w.insert(1000, "now");
        w.insert(400, "past");
        assert_eq!(w.next_at(), Some(400));
        assert_eq!(
            drain_until(&mut w, 1000),
            vec![(400, "past"), (1000, "now")]
        );
    }

    #[test]
    fn advance_into_middle_of_higher_level_slot() {
        let mut w = TimingWheel::new();
        // Both land in the same level-1 slot initially.
        w.insert(70, "early");
        w.insert(120, "late");
        assert_eq!(drain_until(&mut w, 70), vec![(70, "early")]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_at(), Some(120));
        assert_eq!(drain_until(&mut w, 200), vec![(120, "late")]);
    }

    #[test]
    fn max_deadline_is_representable() {
        let mut w = TimingWheel::new();
        w.insert(u64::MAX, "end-of-time");
        assert_eq!(w.next_at(), Some(u64::MAX));
        assert_eq!(
            drain_until(&mut w, u64::MAX),
            vec![(u64::MAX, "end-of-time")]
        );
    }
}
