//! The event core and the phase-structured scheduler loop:
//! evaluate → update → delta-notify → advance-time, exactly mirroring
//! the SystemC 2.0 simulation cycle the reproduced paper builds on.
//!
//! # Lock discipline
//!
//! All kernel state lives behind one mutex ([`Kernel::st`]). The lock
//! is **never** held while a process body runs: it is released before
//! the baton is handed to a thread process and before a method
//! callback is invoked, so process bodies are free to call any
//! [`super::SimHandle`] API.
//!
//! # Chained dispatch
//!
//! The phase loop is one pure state-transition function, [`next_step`],
//! shared by two drivers:
//!
//! * the **kernel thread** ([`run_kernel`]) — runs method callbacks and
//!   signal updates, and returns the [`RunOutcome`];
//! * the **yielding process thread** ([`yield_from_process`]) — after
//!   registering its own wait it calls [`next_step`] under the kernel
//!   lock and, when the next runnable is another thread process, hands
//!   the baton *directly* to it. In thread-to-thread steady state
//!   (exactly the paper's co-simulation shape: T-THREADs exchanging
//!   the CPU through kernel objects) the kernel thread never wakes:
//!   every handoff is one unpark instead of the
//!   process→kernel→process double wake.
//!
//! The kernel thread parks on [`Kernel::gate`] while a chain runs and
//! is signalled when the chain needs it: a method process is due, the
//! update phase has work, the run reached an outcome, or a process
//! panicked ([`KState::pending_panic`] ferries the payload).
//!
//! # The fast-forward run budget (grant batching)
//!
//! A suspending process that can prove it is the *only* activity before
//! its own wake deadline — no runnable process, no pending delta
//! activity or updates, no timed action at or before the deadline, the
//! deadline within the run limit — does not need the engine at all: it
//! advances simulated time itself under one lock acquisition
//! ([`KState::try_fast_forward`]) and keeps running. Consecutive
//! time-consume slices of one thread (the RTOS layer's quantum loop)
//! then cost one mutex acquisition each instead of a baton round trip.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::ids::{EventId, ProcId};
use crate::runtime::{Cmd, Reply, RtShared, WaitSpec, WakeReason};
use crate::time::SimTime;
use crate::trace::{KernelStats, Tracer};

use super::procs::{MethodSlot, ProcBody, ProcState, ProcTable, WaitKind};
use super::wheel::{TimedEntry, TimingWheel};
use super::{DeltaQueues, Kernel, MethodCtx, RunOutcome, SimHandle, CURRENT_NONE};

/// What a pending notification of an event currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pending {
    None,
    Delta,
    At(SimTime),
}

/// Payload of a timing-wheel entry.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum TimedAction {
    FireEvent { event: EventId, gen: u64 },
    WakeProc { proc: ProcId, gen: u64 },
}

pub(crate) struct EventEntry {
    pub(crate) name: String,
    /// Thread processes dynamically waiting on this event: `(proc, gen)`.
    pub(crate) waiters: Vec<(ProcId, u64)>,
    /// Method processes statically sensitive to this event.
    pub(crate) method_subs: Vec<ProcId>,
    pub(crate) pending: Pending,
    /// Bumped on fire/cancel/renotify; stale wheel entries are ignored.
    pub(crate) gen: u64,
    /// If set, the event re-notifies itself this long after each firing
    /// (periodic clock support; O(1) re-arm through the wheel).
    pub(crate) auto_renotify: Option<SimTime>,
    pub(crate) fire_count: u64,
}

impl EventEntry {
    pub(crate) fn new(name: &str) -> Self {
        EventEntry {
            name: name.to_string(),
            waiters: Vec::new(),
            method_subs: Vec::new(),
            pending: Pending::None,
            gen: 0,
            auto_renotify: None,
            fire_count: 0,
        }
    }
}

/// The whole mutable kernel state (behind [`Kernel::st`]).
pub(crate) struct KState {
    pub(crate) now: SimTime,
    pub(crate) procs: ProcTable,
    pub(crate) events: Vec<EventEntry>,
    pub(crate) dq: DeltaQueues,
    pub(crate) wheel: TimingWheel<TimedAction>,
    pub(crate) tracer: Option<Arc<dyn Tracer>>,
    pub(crate) stats: KernelStats,
    pub(crate) in_run: bool,
    pub(crate) max_deltas_per_timestep: u64,
    /// The `run_until` limit of the active run (valid while `in_run`);
    /// read by chained dispatch and the fast-forward budget check.
    pub(crate) run_limit: SimTime,
    /// Delta cycles at the current timestep (shared between the kernel
    /// loop and chained dispatch; reset on every time advance).
    pub(crate) deltas_this_step: u64,
    /// A process-body panic caught on a process thread, to be re-raised
    /// by the kernel thread when the gate hands control back.
    pub(crate) pending_panic: Option<Box<dyn std::any::Any + Send>>,
    /// Reused buffer of due wheel entries (advance-time phase).
    due: Vec<TimedEntry<TimedAction>>,
}

impl KState {
    pub(crate) fn new() -> Self {
        KState {
            now: SimTime::ZERO,
            procs: ProcTable::default(),
            events: Vec::new(),
            dq: DeltaQueues::new(),
            wheel: TimingWheel::new(),
            tracer: None,
            stats: KernelStats::default(),
            in_run: false,
            max_deltas_per_timestep: 1_000_000,
            run_limit: SimTime::ZERO,
            deltas_this_step: 0,
            pending_panic: None,
            due: Vec::new(),
        }
    }

    /// Makes a waiting process runnable with the given wake reason and
    /// invalidates its other registrations.
    pub(crate) fn wake(&mut self, p: ProcId, reason: WakeReason) {
        let e = self.procs.get_mut(p);
        debug_assert_eq!(e.state, ProcState::Waiting);
        e.wait_gen += 1;
        e.wait_kind = WaitKind::None;
        e.pending_reason = reason;
        e.state = ProcState::Ready;
        self.dq.runnable.push_back(p);
    }

    /// Delivers one event firing: wakes dynamic waiters, queues sensitive
    /// methods, and re-arms auto-renotify clocks (O(1) wheel insert).
    pub(crate) fn fire_event(&mut self, id: EventId) {
        let now = self.now;
        self.stats.events_fired += 1;
        let (waiters, renotify) = {
            let ev = &mut self.events[id.index()];
            ev.pending = Pending::None;
            ev.gen += 1;
            ev.fire_count += 1;
            (std::mem::take(&mut ev.waiters), ev.auto_renotify)
        };
        if let Some(t) = &self.tracer {
            let name = self.events[id.index()].name.clone();
            t.event_fired(now, id, &name);
        }
        if let Some(period) = renotify {
            // Saturate at end-of-time: a period pushing past the `u64`
            // picosecond range must clamp, not wrap into the past.
            let at = now.saturating_add(period);
            let gen = self.events[id.index()].gen;
            self.events[id.index()].pending = Pending::At(at);
            self.wheel
                .insert(at.as_ps(), TimedAction::FireEvent { event: id, gen });
        }
        for (p, gen) in waiters {
            let entry = self.procs.get_mut(p);
            if entry.wait_gen != gen || entry.state != ProcState::Waiting {
                continue;
            }
            let wake_all = match &mut entry.wait_kind {
                WaitKind::All { remaining } => {
                    remaining.retain(|x| *x != id);
                    remaining.is_empty()
                }
                _ => {
                    self.wake(p, WakeReason::Fired(id));
                    continue;
                }
            };
            if wake_all {
                self.wake(p, WakeReason::AllFired);
            }
        }
        // Queue statically-sensitive methods without cloning the
        // subscription list (hot path: once per clock tick).
        for i in 0..self.events[id.index()].method_subs.len() {
            let m = self.events[id.index()].method_subs[i];
            let entry = self.procs.get_mut(m);
            if entry.state == ProcState::Finished {
                continue;
            }
            if let ProcBody::Method {
                queued, trigger, ..
            } = &mut entry.body
            {
                if !*queued {
                    *queued = true;
                    *trigger = Some(id);
                    self.dq.runnable.push_back(m);
                }
            }
        }
    }

    /// Registers the wait request of a just-suspended thread process.
    pub(crate) fn register_wait(&mut self, p: ProcId, spec: WaitSpec) {
        let now = self.now;
        let gen = {
            let e = self.procs.get_mut(p);
            e.state = ProcState::Waiting;
            e.wait_gen += 1;
            e.wait_gen
        };
        match spec {
            WaitSpec::Time(d) if d.is_zero() => {
                self.procs.get_mut(p).wait_kind = WaitKind::Yield;
                self.dq.next_delta_runnable.push_back(p);
            }
            WaitSpec::Time(d) => {
                self.procs.get_mut(p).wait_kind = WaitKind::Time;
                self.wheel.insert(
                    now.saturating_add(d).as_ps(),
                    TimedAction::WakeProc { proc: p, gen },
                );
            }
            WaitSpec::Event(e) => {
                self.procs.get_mut(p).wait_kind = WaitKind::Event;
                self.events[e.index()].waiters.push((p, gen));
            }
            WaitSpec::EventTimeout(e, d) => {
                self.procs.get_mut(p).wait_kind = WaitKind::EventTimeout;
                self.events[e.index()].waiters.push((p, gen));
                self.wheel.insert(
                    now.saturating_add(d).as_ps(),
                    TimedAction::WakeProc { proc: p, gen },
                );
            }
            WaitSpec::AnyEvent(list) => {
                self.procs.get_mut(p).wait_kind = WaitKind::Any;
                for e in list {
                    self.events[e.index()].waiters.push((p, gen));
                }
            }
            WaitSpec::AllEvents(mut list) => {
                list.sort_unstable();
                list.dedup();
                if list.is_empty() {
                    self.procs.get_mut(p).wait_kind = WaitKind::Yield;
                    self.dq.next_delta_runnable.push_back(p);
                    return;
                }
                for e in &list {
                    self.events[e.index()].waiters.push((p, gen));
                }
                self.procs.get_mut(p).wait_kind = WaitKind::All { remaining: list };
            }
            WaitSpec::YieldDelta => {
                self.procs.get_mut(p).wait_kind = WaitKind::Yield;
                self.dq.next_delta_runnable.push_back(p);
            }
        }
    }

    // ------------------------------------------------------------------
    // Notification primitives (callers hold the kernel lock; the batch
    // API and `notify_many` amortize one lock over several of these).
    // ------------------------------------------------------------------

    /// Immediate notification: fires now, waking waiters into the
    /// current evaluation phase. Overrides any pending notification.
    pub(crate) fn notify_now_locked(&mut self, e: EventId) {
        let ev = &mut self.events[e.index()];
        ev.gen += 1; // invalidate any pending wheel entry
        ev.pending = Pending::None;
        self.fire_event(e);
    }

    /// Delta notification: fires in the next delta cycle. Overrides a
    /// pending timed notification; keeps an existing delta one.
    pub(crate) fn notify_delta_locked(&mut self, e: EventId) {
        let ev = &mut self.events[e.index()];
        match ev.pending {
            Pending::Delta => {}
            _ => {
                ev.gen += 1;
                ev.pending = Pending::Delta;
                self.dq.delta_notified.push(e);
            }
        }
    }

    /// Timed notification after `delay` (`sc_event` override rule: an
    /// earlier pending notification wins; a later one is replaced).
    /// Zero delay degenerates to a delta notification.
    pub(crate) fn notify_after_locked(&mut self, e: EventId, delay: SimTime) {
        if delay.is_zero() {
            return self.notify_delta_locked(e);
        }
        let at = self.now.saturating_add(delay);
        let ev = &mut self.events[e.index()];
        match ev.pending {
            Pending::Delta => return,
            Pending::At(t) if t <= at => return,
            _ => {}
        }
        ev.gen += 1;
        let gen = ev.gen;
        ev.pending = Pending::At(at);
        self.wheel
            .insert(at.as_ps(), TimedAction::FireEvent { event: e, gen });
    }

    /// Advances `now` to `to`, with stats/tracer bookkeeping; idempotent
    /// when `now` is already there.
    fn advance_now_to(&mut self, to: SimTime) {
        let old = self.now;
        if old == to {
            return;
        }
        self.now = to;
        self.stats.time_advances += 1;
        if let Some(t) = &self.tracer {
            t.time_advanced(old, to);
        }
    }

    /// The fast-forward run budget: if the calling (running) process is
    /// provably the only activity before `now + d`, advance simulated
    /// time in place and return `true` — the process keeps the baton
    /// and no engine round trip happens. See the module docs.
    pub(crate) fn try_fast_forward(&mut self, d: SimTime) -> bool {
        if !self.in_run || self.tracer.is_some() {
            return false;
        }
        if !self.dq.runnable.is_empty()
            || !self.dq.next_delta_runnable.is_empty()
            || !self.dq.delta_notified.is_empty()
            || !self.dq.updates.is_empty()
        {
            return false;
        }
        let deadline = self.now.saturating_add(d);
        if deadline <= self.now || deadline > self.run_limit {
            return false;
        }
        // Any timed action at or before the deadline — including one
        // scheduled for the exact same instant, whose delivery order
        // matters — forces the ordinary engine path.
        if let Some(next) = self.wheel.next_at() {
            if next <= deadline.as_ps() {
                return false;
            }
        }
        self.deltas_this_step = 0;
        self.stats.fast_forwards += 1;
        self.advance_now_to(deadline);
        true
    }
}

/// What the phase loop decided must happen next.
pub(crate) enum NextStep {
    /// Hand control to this thread process.
    Thread(ProcId, RtShared, WakeReason),
    /// Run this method callback (kernel thread only).
    Method(ProcId, Arc<MethodSlot>, Option<EventId>),
    /// The update phase has work (kernel thread only).
    Updates,
    /// Chained dispatch cannot continue; the kernel thread must decide.
    WakeKernel,
    /// The run is over.
    Outcome(RunOutcome),
}

/// Dispatch bookkeeping shared by both drivers: the `current` marker,
/// activation counter and tracer hook.
fn dispatch_bookkeeping(st: &mut KState, current: &AtomicU32, pid: ProcId) {
    current.store(pid.index() as u32, Ordering::Relaxed);
    st.stats.process_runs += 1;
    if let Some(t) = &st.tracer {
        let name = st.procs.get(pid).name.clone();
        t.process_dispatched(st.now, pid, &name);
    }
}

/// One turn of the phase engine: runs evaluate/update/delta-notify/
/// advance-time bookkeeping until something must execute (or the run is
/// over). Caller holds the kernel lock.
///
/// With `from_process` the caller is a yielding process thread chaining
/// the dispatch: anything only the kernel thread may do (method
/// callbacks, signal updates, returning an outcome) yields
/// [`NextStep::WakeKernel`] instead, leaving the state for the kernel
/// to re-derive — all such exits are idempotent.
pub(crate) fn next_step(st: &mut KState, current: &AtomicU32, from_process: bool) -> NextStep {
    loop {
        if st.deltas_this_step > st.max_deltas_per_timestep {
            return if from_process {
                NextStep::WakeKernel
            } else {
                NextStep::Outcome(RunOutcome::DeltaLimitExceeded)
            };
        }

        // ---- Evaluate phase: pop the next runnable process ------------
        while let Some(pid) = st.dq.runnable.pop_front() {
            enum Picked {
                Thread(RtShared, WakeReason),
                Method(Arc<MethodSlot>, Option<EventId>),
                Defer,
                Skip,
            }
            let picked = {
                let entry = st.procs.get_mut(pid);
                match (&mut entry.body, entry.state) {
                    (_, ProcState::Finished) => Picked::Skip,
                    (ProcBody::Thread { shared }, ProcState::Ready) => {
                        entry.state = ProcState::Running;
                        let reason = entry.pending_reason;
                        Picked::Thread(shared.clone(), reason)
                    }
                    // Methods run on the kernel thread only.
                    (ProcBody::Method { .. }, _) if from_process => Picked::Defer,
                    (
                        ProcBody::Method {
                            slot,
                            queued,
                            trigger,
                        },
                        _,
                    ) => {
                        *queued = false;
                        let trig = trigger.take();
                        Picked::Method(Arc::clone(slot), trig)
                    }
                    _ => Picked::Skip,
                }
            };
            match picked {
                Picked::Skip => continue,
                Picked::Defer => {
                    st.dq.runnable.push_front(pid);
                    return NextStep::WakeKernel;
                }
                Picked::Thread(shared, reason) => {
                    dispatch_bookkeeping(st, current, pid);
                    return NextStep::Thread(pid, shared, reason);
                }
                Picked::Method(slot, trig) => {
                    dispatch_bookkeeping(st, current, pid);
                    return NextStep::Method(pid, slot, trig);
                }
            }
        }

        // ---- Update phase (callbacks run outside the lock) ------------
        if !st.dq.updates.is_empty() {
            return if from_process {
                NextStep::WakeKernel
            } else {
                NextStep::Updates
            };
        }

        // ---- Delta-notify phase ---------------------------------------
        let evs = std::mem::take(&mut st.dq.delta_notified);
        for e in evs {
            if st.events[e.index()].pending == Pending::Delta {
                st.fire_event(e);
            }
        }
        while let Some(p) = st.dq.next_delta_runnable.pop_front() {
            if st.procs.get(p).state == ProcState::Waiting {
                st.wake(p, WakeReason::Yielded);
            }
        }
        if !st.dq.runnable.is_empty() {
            st.stats.delta_cycles += 1;
            st.deltas_this_step += 1;
            if let Some(t) = &st.tracer {
                t.delta_cycle(st.now, st.deltas_this_step);
            }
            continue;
        }

        // ---- Advance-time phase ---------------------------------------
        let at = match st.wheel.next_at().map(SimTime::from_ps) {
            None => {
                return if from_process {
                    NextStep::WakeKernel
                } else {
                    NextStep::Outcome(RunOutcome::Starved)
                };
            }
            Some(at) if at > st.run_limit => {
                let limit = st.run_limit;
                st.advance_now_to(limit);
                return if from_process {
                    NextStep::WakeKernel
                } else {
                    NextStep::Outcome(RunOutcome::ReachedLimit)
                };
            }
            Some(at) => at,
        };
        st.deltas_this_step = 0;
        st.advance_now_to(at);
        // Deliver every action scheduled at-or-before this timestamp
        // (in `(at, seq)` order: the wheel sorts).
        let mut due = std::mem::take(&mut st.due);
        st.wheel.advance_to(at.as_ps(), &mut due);
        for entry in due.drain(..) {
            match entry.action {
                TimedAction::FireEvent { event, gen } => {
                    if st.events[event.index()].gen == gen {
                        st.fire_event(event);
                    }
                }
                TimedAction::WakeProc { proc, gen } => {
                    let pe = st.procs.get(proc);
                    if pe.wait_gen == gen && pe.state == ProcState::Waiting {
                        let reason = match pe.wait_kind {
                            WaitKind::EventTimeout => WakeReason::TimedOut,
                            _ => WakeReason::TimeElapsed,
                        };
                        st.wake(proc, reason);
                    }
                }
            }
        }
        st.due = due;
    }
}

/// Process-side yield: the scheduler bookkeeping the kernel used to do
/// on reply receipt, then chained dispatch — hand the baton straight to
/// the next runnable thread process, or signal the kernel gate.
///
/// Time-bounded waits first try the fast-forward run budget under the
/// same (single) lock acquisition: on success the process never
/// suspends and the served [`WakeReason`] is returned instead.
pub(crate) fn yield_from_process(
    k: &Arc<Kernel>,
    pid: ProcId,
    shared: &RtShared,
    spec: WaitSpec,
) -> Option<WakeReason> {
    let next = {
        let mut st = k.st.lock();
        let fast = match &spec {
            WaitSpec::Time(d) if !d.is_zero() => {
                st.try_fast_forward(*d).then_some(WakeReason::TimeElapsed)
            }
            // Nothing can fire the awaited event before the deadline
            // either: no runnable process exists to notify it, and any
            // pending timed/delta notification fails the budget checks.
            WaitSpec::EventTimeout(_, d) if !d.is_zero() => {
                st.try_fast_forward(*d).then_some(WakeReason::TimedOut)
            }
            _ => None,
        };
        if fast.is_some() {
            return fast;
        }
        k.current.store(CURRENT_NONE, Ordering::Relaxed);
        if let Some(t) = &st.tracer {
            t.process_suspended(st.now, pid);
        }
        // Only re-register if still marked Running (the body may have
        // been torn down).
        if st.procs.get(pid).state == ProcState::Running {
            st.register_wait(pid, spec);
        }
        // Give the baton back before the lock drops: a later kill()
        // must find the turn on the kernel side.
        shared.release();
        match next_step(&mut st, &k.current, true) {
            NextStep::Thread(_, nshared, reason) => Some((nshared, reason)),
            _ => None,
        }
    };
    match next {
        // Direct process-to-process handoff (possibly to ourselves, in
        // which case the pending command is picked up without parking).
        Some((nshared, reason)) => nshared.post(Cmd::Run(reason)),
        None => k.rt.signal(),
    }
    None
}

/// The finish bookkeeping shared by both runtimes: marks the process
/// finished under the kernel lock and decides where control goes next —
/// `Some` names the next thread process to chain to, `None` means the
/// kernel root must take over (including the panic case, whose payload
/// is parked in the kernel state for the root to re-raise).
pub(crate) fn finish_step(
    k: &Arc<Kernel>,
    pid: ProcId,
    shared: &RtShared,
    reply: Reply,
) -> Option<(RtShared, WakeReason)> {
    let mut st = k.st.lock();
    k.current.store(CURRENT_NONE, Ordering::Relaxed);
    if let Some(t) = &st.tracer {
        t.process_suspended(st.now, pid);
    }
    st.procs.get_mut(pid).finish();
    shared.release();
    match reply {
        Reply::Panicked(payload) => {
            st.pending_panic = Some(payload);
            None
        }
        Reply::Finished => match next_step(&mut st, &k.current, true) {
            NextStep::Thread(_, nshared, reason) => Some((nshared, reason)),
            _ => None,
        },
    }
}

/// Process-side finish for the threaded runtime: bookkeeping, then the
/// transfer (the coro wrapper instead returns the transfer as its
/// [`crate::runtime::coro::Terminal`] so its stack is clean when the
/// final switch happens).
pub(crate) fn finish_from_process(k: &Arc<Kernel>, pid: ProcId, shared: &RtShared, reply: Reply) {
    match finish_step(k, pid, shared, reply) {
        Some((nshared, reason)) => nshared.post(Cmd::Run(reason)),
        None => k.rt.signal(),
    }
}

/// The scheduler entry point (used by `Simulation::run_until`).
pub(crate) fn run_kernel(k: &Arc<Kernel>, limit: SimTime) -> RunOutcome {
    {
        let mut st = k.st.lock();
        assert!(!st.in_run, "Simulation::run_* is not reentrant");
        st.in_run = true;
        st.run_limit = limit;
        st.deltas_this_step = 0;
    }
    let outcome = run_kernel_inner(k);
    k.st.lock().in_run = false;
    match outcome {
        Ok(o) => o,
        Err(payload) => panic::resume_unwind(payload),
    }
}

fn run_kernel_inner(k: &Arc<Kernel>) -> Result<RunOutcome, Box<dyn std::any::Any + Send>> {
    loop {
        let step = {
            let mut st = k.st.lock();
            if let Some(payload) = st.pending_panic.take() {
                return Err(payload);
            }
            next_step(&mut st, &k.current, false)
        };
        match step {
            NextStep::Thread(_pid, shared, reason) => {
                // Threaded: hand over the baton, then park until the
                // chain signals the gate. Coro: `post` switches into
                // the chain and returns when control comes back here,
                // with the gate token already set; `wait` consumes it.
                shared.post(Cmd::Run(reason));
                k.rt.wait();
            }
            NextStep::Method(pid, slot, trig) => {
                // Fast path: the kernel lock is NOT held and NOT
                // re-acquired around the callback; the box stays in
                // its slot. `slot.cb` is empty if the method was
                // killed after being queued.
                let result = {
                    let mut cb_guard = slot.cb.lock();
                    match cb_guard.as_mut() {
                        None => Ok(()),
                        Some(cb) => {
                            let mut ctx = MethodCtx {
                                handle: SimHandle { k: Arc::clone(k) },
                                id: pid,
                                triggered_by: trig,
                            };
                            panic::catch_unwind(AssertUnwindSafe(|| cb(&mut ctx)))
                        }
                    }
                };
                k.current.store(CURRENT_NONE, Ordering::Relaxed);
                // Slow path only for observability or failure.
                if k.tracing.load(Ordering::Relaxed) {
                    let st = k.st.lock();
                    if let Some(t) = &st.tracer {
                        t.process_suspended(st.now, pid);
                    }
                }
                if let Err(payload) = result {
                    k.st.lock().procs.get_mut(pid).finish();
                    return Err(payload);
                }
            }
            NextStep::Updates => {
                let updates = std::mem::take(&mut k.st.lock().dq.updates);
                for u in &updates {
                    if let Some(changed) = u.apply_update() {
                        let mut st = k.st.lock();
                        st.stats.signal_updates += 1;
                        if let Some(t) = &st.tracer {
                            let (name, value) = u.describe();
                            t.signal_changed(st.now, &name, &value);
                        }
                        // Schedule the value-changed event for the
                        // delta-notify phase (SystemC: signal updates
                        // notify the next delta).
                        st.notify_delta_locked(changed);
                    }
                }
            }
            NextStep::WakeKernel => unreachable!("kernel-mode next_step never defers"),
            NextStep::Outcome(outcome) => return Ok(outcome),
        }
    }
}
