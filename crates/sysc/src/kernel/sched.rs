//! The event core and the phase-structured scheduler loop:
//! evaluate → update → delta-notify → advance-time, exactly mirroring
//! the SystemC 2.0 simulation cycle the reproduced paper builds on.
//!
//! # Lock discipline
//!
//! All kernel state lives behind one mutex ([`Kernel::st`]). The lock
//! is **never** held while a process body runs: the kernel releases it
//! before handing the baton to a thread process or invoking a method
//! callback, so process bodies are free to call any
//! [`super::SimHandle`] API. Method callbacks additionally run off a
//! per-process [`super::procs::MethodSlot`] so no second kernel-lock
//! acquisition is needed per activation (the fast path), and tracer
//! hooks are the only reason the slow path re-locks.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::ids::{EventId, ProcId};
use crate::process::{Cmd, ProcShared, Reply, WaitSpec, WakeReason};
use crate::time::SimTime;
use crate::trace::{KernelStats, Tracer};

use super::procs::{MethodSlot, ProcBody, ProcState, ProcTable, WaitKind};
use super::wheel::{TimedEntry, TimingWheel};
use super::{DeltaQueues, Kernel, MethodCtx, RunOutcome, SimHandle, CURRENT_NONE};

/// What a pending notification of an event currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pending {
    None,
    Delta,
    At(SimTime),
}

/// Payload of a timing-wheel entry.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum TimedAction {
    FireEvent { event: EventId, gen: u64 },
    WakeProc { proc: ProcId, gen: u64 },
}

pub(crate) struct EventEntry {
    pub(crate) name: String,
    /// Thread processes dynamically waiting on this event: `(proc, gen)`.
    pub(crate) waiters: Vec<(ProcId, u64)>,
    /// Method processes statically sensitive to this event.
    pub(crate) method_subs: Vec<ProcId>,
    pub(crate) pending: Pending,
    /// Bumped on fire/cancel/renotify; stale wheel entries are ignored.
    pub(crate) gen: u64,
    /// If set, the event re-notifies itself this long after each firing
    /// (periodic clock support; O(1) re-arm through the wheel).
    pub(crate) auto_renotify: Option<SimTime>,
    pub(crate) fire_count: u64,
}

impl EventEntry {
    pub(crate) fn new(name: &str) -> Self {
        EventEntry {
            name: name.to_string(),
            waiters: Vec::new(),
            method_subs: Vec::new(),
            pending: Pending::None,
            gen: 0,
            auto_renotify: None,
            fire_count: 0,
        }
    }
}

/// The whole mutable kernel state (behind [`Kernel::st`]).
pub(crate) struct KState {
    pub(crate) now: SimTime,
    pub(crate) procs: ProcTable,
    pub(crate) events: Vec<EventEntry>,
    pub(crate) dq: DeltaQueues,
    pub(crate) wheel: TimingWheel<TimedAction>,
    pub(crate) tracer: Option<Arc<dyn Tracer>>,
    pub(crate) stats: KernelStats,
    pub(crate) in_run: bool,
    pub(crate) max_deltas_per_timestep: u64,
    /// Reused buffer of due wheel entries (advance-time phase).
    due: Vec<TimedEntry<TimedAction>>,
}

impl KState {
    pub(crate) fn new() -> Self {
        KState {
            now: SimTime::ZERO,
            procs: ProcTable::default(),
            events: Vec::new(),
            dq: DeltaQueues::new(),
            wheel: TimingWheel::new(),
            tracer: None,
            stats: KernelStats::default(),
            in_run: false,
            max_deltas_per_timestep: 1_000_000,
            due: Vec::new(),
        }
    }

    /// Makes a waiting process runnable with the given wake reason and
    /// invalidates its other registrations.
    pub(crate) fn wake(&mut self, p: ProcId, reason: WakeReason) {
        let e = self.procs.get_mut(p);
        debug_assert_eq!(e.state, ProcState::Waiting);
        e.wait_gen += 1;
        e.wait_kind = WaitKind::None;
        e.pending_reason = reason;
        e.state = ProcState::Ready;
        self.dq.runnable.push_back(p);
    }

    /// Delivers one event firing: wakes dynamic waiters, queues sensitive
    /// methods, and re-arms auto-renotify clocks (O(1) wheel insert).
    pub(crate) fn fire_event(&mut self, id: EventId) {
        let now = self.now;
        self.stats.events_fired += 1;
        let (waiters, renotify) = {
            let ev = &mut self.events[id.index()];
            ev.pending = Pending::None;
            ev.gen += 1;
            ev.fire_count += 1;
            (std::mem::take(&mut ev.waiters), ev.auto_renotify)
        };
        if let Some(t) = &self.tracer {
            let name = self.events[id.index()].name.clone();
            t.event_fired(now, id, &name);
        }
        if let Some(period) = renotify {
            // Saturate at end-of-time: a period pushing past the `u64`
            // picosecond range must clamp, not wrap into the past.
            let at = now.saturating_add(period);
            let gen = self.events[id.index()].gen;
            self.events[id.index()].pending = Pending::At(at);
            self.wheel
                .insert(at.as_ps(), TimedAction::FireEvent { event: id, gen });
        }
        for (p, gen) in waiters {
            let entry = self.procs.get_mut(p);
            if entry.wait_gen != gen || entry.state != ProcState::Waiting {
                continue;
            }
            let wake_all = match &mut entry.wait_kind {
                WaitKind::All { remaining } => {
                    remaining.retain(|x| *x != id);
                    remaining.is_empty()
                }
                _ => {
                    self.wake(p, WakeReason::Fired(id));
                    continue;
                }
            };
            if wake_all {
                self.wake(p, WakeReason::AllFired);
            }
        }
        // Queue statically-sensitive methods without cloning the
        // subscription list (hot path: once per clock tick).
        for i in 0..self.events[id.index()].method_subs.len() {
            let m = self.events[id.index()].method_subs[i];
            let entry = self.procs.get_mut(m);
            if entry.state == ProcState::Finished {
                continue;
            }
            if let ProcBody::Method {
                queued, trigger, ..
            } = &mut entry.body
            {
                if !*queued {
                    *queued = true;
                    *trigger = Some(id);
                    self.dq.runnable.push_back(m);
                }
            }
        }
    }

    /// Registers the wait request of a just-suspended thread process.
    pub(crate) fn register_wait(&mut self, p: ProcId, spec: WaitSpec) {
        let now = self.now;
        let gen = {
            let e = self.procs.get_mut(p);
            e.state = ProcState::Waiting;
            e.wait_gen += 1;
            e.wait_gen
        };
        match spec {
            WaitSpec::Time(d) if d.is_zero() => {
                self.procs.get_mut(p).wait_kind = WaitKind::Yield;
                self.dq.next_delta_runnable.push_back(p);
            }
            WaitSpec::Time(d) => {
                self.procs.get_mut(p).wait_kind = WaitKind::Time;
                self.wheel.insert(
                    now.saturating_add(d).as_ps(),
                    TimedAction::WakeProc { proc: p, gen },
                );
            }
            WaitSpec::Event(e) => {
                self.procs.get_mut(p).wait_kind = WaitKind::Event;
                self.events[e.index()].waiters.push((p, gen));
            }
            WaitSpec::EventTimeout(e, d) => {
                self.procs.get_mut(p).wait_kind = WaitKind::EventTimeout;
                self.events[e.index()].waiters.push((p, gen));
                self.wheel.insert(
                    now.saturating_add(d).as_ps(),
                    TimedAction::WakeProc { proc: p, gen },
                );
            }
            WaitSpec::AnyEvent(list) => {
                self.procs.get_mut(p).wait_kind = WaitKind::Any;
                for e in list {
                    self.events[e.index()].waiters.push((p, gen));
                }
            }
            WaitSpec::AllEvents(mut list) => {
                list.sort_unstable();
                list.dedup();
                if list.is_empty() {
                    self.procs.get_mut(p).wait_kind = WaitKind::Yield;
                    self.dq.next_delta_runnable.push_back(p);
                    return;
                }
                for e in &list {
                    self.events[e.index()].waiters.push((p, gen));
                }
                self.procs.get_mut(p).wait_kind = WaitKind::All { remaining: list };
            }
            WaitSpec::YieldDelta => {
                self.procs.get_mut(p).wait_kind = WaitKind::Yield;
                self.dq.next_delta_runnable.push_back(p);
            }
        }
    }

    // ------------------------------------------------------------------
    // Notification primitives (callers hold the kernel lock; the batch
    // API and `notify_many` amortize one lock over several of these).
    // ------------------------------------------------------------------

    /// Immediate notification: fires now, waking waiters into the
    /// current evaluation phase. Overrides any pending notification.
    pub(crate) fn notify_now_locked(&mut self, e: EventId) {
        let ev = &mut self.events[e.index()];
        ev.gen += 1; // invalidate any pending wheel entry
        ev.pending = Pending::None;
        self.fire_event(e);
    }

    /// Delta notification: fires in the next delta cycle. Overrides a
    /// pending timed notification; keeps an existing delta one.
    pub(crate) fn notify_delta_locked(&mut self, e: EventId) {
        let ev = &mut self.events[e.index()];
        match ev.pending {
            Pending::Delta => {}
            _ => {
                ev.gen += 1;
                ev.pending = Pending::Delta;
                self.dq.delta_notified.push(e);
            }
        }
    }

    /// Timed notification after `delay` (`sc_event` override rule: an
    /// earlier pending notification wins; a later one is replaced).
    /// Zero delay degenerates to a delta notification.
    pub(crate) fn notify_after_locked(&mut self, e: EventId, delay: SimTime) {
        if delay.is_zero() {
            return self.notify_delta_locked(e);
        }
        let at = self.now.saturating_add(delay);
        let ev = &mut self.events[e.index()];
        match ev.pending {
            Pending::Delta => return,
            Pending::At(t) if t <= at => return,
            _ => {}
        }
        ev.gen += 1;
        let gen = ev.gen;
        ev.pending = Pending::At(at);
        self.wheel
            .insert(at.as_ps(), TimedAction::FireEvent { event: e, gen });
    }
}

/// What the evaluate phase decided to run for one popped process.
enum Runner {
    Thread(Arc<ProcShared>, WakeReason),
    Method(Arc<MethodSlot>, Option<EventId>),
    Skip,
}

/// The scheduler entry point (used by `Simulation::run_until`).
pub(crate) fn run_kernel(k: &Arc<Kernel>, limit: SimTime) -> RunOutcome {
    {
        let mut st = k.st.lock();
        assert!(!st.in_run, "Simulation::run_* is not reentrant");
        st.in_run = true;
    }
    let outcome = run_kernel_inner(k, limit);
    k.st.lock().in_run = false;
    match outcome {
        Ok(o) => o,
        Err(payload) => panic::resume_unwind(payload),
    }
}

fn run_kernel_inner(
    k: &Arc<Kernel>,
    limit: SimTime,
) -> Result<RunOutcome, Box<dyn std::any::Any + Send>> {
    let mut deltas_this_step: u64 = 0;
    loop {
        // ---- Evaluate phase -------------------------------------------------
        loop {
            let (pid, runner) = {
                let mut st = k.st.lock();
                let Some(pid) = st.dq.runnable.pop_front() else {
                    break;
                };
                let entry = st.procs.get_mut(pid);
                let runner = match (&mut entry.body, entry.state) {
                    (_, ProcState::Finished) => Runner::Skip,
                    (ProcBody::Thread { shared, .. }, ProcState::Ready) => {
                        entry.state = ProcState::Running;
                        let reason = entry.pending_reason;
                        Runner::Thread(Arc::clone(shared), reason)
                    }
                    (
                        ProcBody::Method {
                            slot,
                            queued,
                            trigger,
                        },
                        _,
                    ) => {
                        *queued = false;
                        let trig = trigger.take();
                        Runner::Method(Arc::clone(slot), trig)
                    }
                    _ => Runner::Skip,
                };
                if !matches!(runner, Runner::Skip) {
                    k.current.store(pid.index() as u32, Ordering::Relaxed);
                    st.stats.process_runs += 1;
                    if let Some(t) = &st.tracer {
                        let name = st.procs.get(pid).name.clone();
                        t.process_dispatched(st.now, pid, &name);
                    }
                }
                (pid, runner)
            };
            match runner {
                Runner::Skip => continue,
                Runner::Thread(shared, reason) => {
                    let reply = shared.resume(Cmd::Run(reason));
                    let mut st = k.st.lock();
                    k.current.store(CURRENT_NONE, Ordering::Relaxed);
                    if let Some(t) = &st.tracer {
                        t.process_suspended(st.now, pid);
                    }
                    match reply {
                        Reply::Yielded(spec) => {
                            // Only re-register if still marked Running
                            // (the body may have been torn down).
                            if st.procs.get(pid).state == ProcState::Running {
                                st.register_wait(pid, spec);
                            }
                        }
                        Reply::Finished => st.procs.get_mut(pid).finish(),
                        Reply::Panicked(payload) => {
                            st.procs.get_mut(pid).finish();
                            return Err(payload);
                        }
                    }
                }
                Runner::Method(slot, trig) => {
                    // Fast path: the kernel lock is NOT held and NOT
                    // re-acquired around the callback; the box stays in
                    // its slot. `slot.cb` is empty if the method was
                    // killed after being queued.
                    let result = {
                        let mut cb_guard = slot.cb.lock();
                        match cb_guard.as_mut() {
                            None => Ok(()),
                            Some(cb) => {
                                let mut ctx = MethodCtx {
                                    handle: SimHandle { k: Arc::clone(k) },
                                    id: pid,
                                    triggered_by: trig,
                                };
                                panic::catch_unwind(AssertUnwindSafe(|| cb(&mut ctx)))
                            }
                        }
                    };
                    k.current.store(CURRENT_NONE, Ordering::Relaxed);
                    // Slow path only for observability or failure.
                    if k.tracing.load(Ordering::Relaxed) {
                        let st = k.st.lock();
                        if let Some(t) = &st.tracer {
                            t.process_suspended(st.now, pid);
                        }
                    }
                    if let Err(payload) = result {
                        k.st.lock().procs.get_mut(pid).finish();
                        return Err(payload);
                    }
                }
            }
        }

        // ---- Update phase ---------------------------------------------------
        let updates = std::mem::take(&mut k.st.lock().dq.updates);
        for u in &updates {
            if let Some(changed) = u.apply_update() {
                let mut st = k.st.lock();
                st.stats.signal_updates += 1;
                if let Some(t) = &st.tracer {
                    let (name, value) = u.describe();
                    t.signal_changed(st.now, &name, &value);
                }
                // Schedule the value-changed event for the delta-notify
                // phase (SystemC: signal updates notify the next delta).
                st.notify_delta_locked(changed);
            }
        }

        // ---- Delta-notify phase ---------------------------------------------
        {
            let mut st = k.st.lock();
            let evs = std::mem::take(&mut st.dq.delta_notified);
            for e in evs {
                if st.events[e.index()].pending == Pending::Delta {
                    st.fire_event(e);
                }
            }
            while let Some(p) = st.dq.next_delta_runnable.pop_front() {
                if st.procs.get(p).state == ProcState::Waiting {
                    st.wake(p, WakeReason::Yielded);
                }
            }
            if !st.dq.runnable.is_empty() {
                st.stats.delta_cycles += 1;
                deltas_this_step += 1;
                if let Some(t) = &st.tracer {
                    t.delta_cycle(st.now, deltas_this_step);
                }
                if deltas_this_step > st.max_deltas_per_timestep {
                    return Ok(RunOutcome::DeltaLimitExceeded);
                }
                continue;
            }
        }

        // ---- Advance-time phase ---------------------------------------------
        {
            let mut st = k.st.lock();
            deltas_this_step = 0;
            let at = match st.wheel.next_at().map(SimTime::from_ps) {
                None => return Ok(RunOutcome::Starved),
                Some(at) if at > limit => {
                    let old = st.now;
                    st.now = limit;
                    if old != limit {
                        st.stats.time_advances += 1;
                        if let Some(t) = &st.tracer {
                            t.time_advanced(old, limit);
                        }
                    }
                    return Ok(RunOutcome::ReachedLimit);
                }
                Some(at) => at,
            };
            let old = st.now;
            st.now = at;
            if old != at {
                st.stats.time_advances += 1;
                if let Some(t) = &st.tracer {
                    t.time_advanced(old, at);
                }
            }
            // Deliver every action scheduled at-or-before this
            // timestamp (in `(at, seq)` order: the wheel sorts).
            let mut due = std::mem::take(&mut st.due);
            st.wheel.advance_to(at.as_ps(), &mut due);
            for entry in due.drain(..) {
                match entry.action {
                    TimedAction::FireEvent { event, gen } => {
                        if st.events[event.index()].gen == gen {
                            st.fire_event(event);
                        }
                    }
                    TimedAction::WakeProc { proc, gen } => {
                        let pe = st.procs.get(proc);
                        if pe.wait_gen == gen && pe.state == ProcState::Waiting {
                            let reason = match pe.wait_kind {
                                WaitKind::EventTimeout => WakeReason::TimedOut,
                                _ => WakeReason::TimeElapsed,
                            };
                            st.wake(proc, reason);
                        }
                    }
                }
            }
            st.due = due;
        }
    }
}
