//! The process table: thread- and method-process bookkeeping.
//!
//! Thread processes run on OS threads under the baton protocol of
//! [`crate::process`]; method processes are plain callbacks. For the
//! method fast path, the callback box lives *outside* the kernel state
//! in a per-process [`MethodSlot`], so the scheduler can pop a method
//! from the runnable queue in one kernel-lock acquisition and then run
//! the callback without re-locking the process table (the old design
//! re-acquired the global lock after every callback just to put the
//! box back).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::ids::{EventId, ProcId};
use crate::runtime::{RtShared, WakeReason};

use super::MethodCtx;

/// What a process is currently waiting for (bookkeeping for wake-ups).
#[derive(Debug)]
pub(crate) enum WaitKind {
    None,
    Time,
    Event,
    EventTimeout,
    Any,
    All { remaining: Vec<EventId> },
    Yield,
}

/// A boxed method-process callback.
pub(crate) type MethodCallback = Box<dyn FnMut(&mut MethodCtx) + Send>;

/// The boxed method callback, outside the kernel lock. Empty while the
/// callback is running and after the process is killed.
pub(crate) struct MethodSlot {
    pub(crate) cb: Mutex<Option<MethodCallback>>,
}

impl MethodSlot {
    pub(crate) fn new(cb: MethodCallback) -> Arc<Self> {
        Arc::new(MethodSlot {
            cb: Mutex::new(Some(cb)),
        })
    }
}

pub(crate) enum ProcBody {
    Thread {
        /// The runtime transfer handle: the baton rendezvous of a
        /// pooled OS thread, or a coroutine context on a leased heap
        /// stack ([`crate::runtime`]). There is no join handle either
        /// way; teardown is the terminate handshake, after which the
        /// worker (or stack) is recycled.
        shared: RtShared,
    },
    Method {
        slot: Arc<MethodSlot>,
        queued: bool,
        trigger: Option<EventId>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcState {
    Ready,
    Running,
    Waiting,
    Finished,
}

pub(crate) struct ProcEntry {
    pub(crate) name: String,
    pub(crate) body: ProcBody,
    pub(crate) state: ProcState,
    pub(crate) wait_kind: WaitKind,
    /// Bumped on every registration and wake; stale registrations carry
    /// an older generation and are ignored.
    pub(crate) wait_gen: u64,
    pub(crate) pending_reason: WakeReason,
}

impl ProcEntry {
    pub(crate) fn new_thread(name: &str, shared: RtShared) -> Self {
        ProcEntry {
            name: name.to_string(),
            body: ProcBody::Thread { shared },
            state: ProcState::Ready,
            wait_kind: WaitKind::None,
            wait_gen: 0,
            pending_reason: WakeReason::Start,
        }
    }

    pub(crate) fn new_method(name: &str, slot: Arc<MethodSlot>, queued: bool) -> Self {
        ProcEntry {
            name: name.to_string(),
            body: ProcBody::Method {
                slot,
                queued,
                trigger: None,
            },
            state: ProcState::Ready,
            wait_kind: WaitKind::None,
            wait_gen: 0,
            pending_reason: WakeReason::Start,
        }
    }

    /// Marks the process finished and invalidates its registrations.
    pub(crate) fn finish(&mut self) {
        self.state = ProcState::Finished;
        self.wait_gen += 1;
        self.wait_kind = WaitKind::None;
    }
}

/// Dense table of all processes of one simulation.
#[derive(Default)]
pub(crate) struct ProcTable {
    entries: Vec<ProcEntry>,
}

impl ProcTable {
    pub(crate) fn push(&mut self, entry: ProcEntry) -> ProcId {
        let id = ProcId(self.entries.len() as u32);
        self.entries.push(entry);
        id
    }

    pub(crate) fn get(&self, p: ProcId) -> &ProcEntry {
        &self.entries[p.index()]
    }

    pub(crate) fn get_mut(&mut self, p: ProcId) -> &mut ProcEntry {
        &mut self.entries[p.index()]
    }

    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = &mut ProcEntry> {
        self.entries.iter_mut()
    }
}
