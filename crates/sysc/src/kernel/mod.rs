//! The discrete-event kernel, split by phase responsibility:
//!
//! * [`sched`] — the event core and the evaluate → update →
//!   delta-notify → advance-time scheduler loop;
//! * [`wheel`] — the hierarchical timing wheel holding timed and
//!   periodic notifications (O(1) insert on the clock-tick hot path);
//! * [`delta`] — the per-delta queues (runnable, yields, delta
//!   notifications, signal updates);
//! * [`procs`] — the process table and the method-process fast path.
//!
//! This module keeps the public surface: [`Simulation`], [`SimHandle`]
//! (including the batched [`SimHandle::notify_many`] /
//! [`NotifyBatch`] APIs), [`ProcCtx`] and [`MethodCtx`].

mod delta;
mod handle;
mod procs;
mod sched;
pub(crate) mod wheel;

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ids::{EventId, ProcId};
use crate::runtime::{raise_terminate, Cmd, RtKernel, RtShared, Runtime, WaitSpec, WakeReason};
use crate::time::SimTime;
use crate::trace::{KernelStats, Tracer};

pub(crate) use delta::DeltaQueues;
pub use handle::{NotifyBatch, SimHandle};
use procs::{ProcBody, ProcState};
use sched::KState;

/// Sentinel for "no process currently executing".
pub(crate) const CURRENT_NONE: u32 = u32::MAX;

/// Why a call to [`Simulation::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// No future activity exists: every process is waiting with nothing
    /// pending (event starvation), or all processes finished.
    Starved,
    /// The requested time limit was reached; activity remains pending.
    ReachedLimit,
    /// The per-timestep delta-cycle limit was exceeded (a combinational
    /// loop or a zero-delay oscillation).
    DeltaLimitExceeded,
}

/// Outcome of a `wait_event_timeout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The event fired before the timeout.
    Fired,
    /// The timeout elapsed first.
    TimedOut,
}

/// How a newly spawned thread process starts.
#[derive(Debug, Clone, Copy)]
pub enum SpawnMode {
    /// Runnable immediately (current/initial evaluation phase).
    Immediate,
    /// Parked until the given event fires for the first time.
    WaitEvent(EventId),
}

pub(crate) struct Kernel {
    pub(crate) st: Mutex<KState>,
    /// Index of the currently executing process (`CURRENT_NONE` when
    /// the scheduler itself runs); outside the lock so the method fast
    /// path never re-locks just for bookkeeping.
    pub(crate) current: AtomicU32,
    /// Mirrors `st.tracer.is_some()` so hot paths can skip tracing
    /// without taking the lock.
    pub(crate) tracing: AtomicBool,
    /// The process-runtime backend: the kernel's chained-dispatch gate
    /// plus the factory for per-process transfer handles (pooled OS
    /// threads or stackful coroutines; see [`crate::runtime`]).
    pub(crate) rt: RtKernel,
}

impl Kernel {
    fn new(runtime: Runtime) -> Self {
        Kernel {
            st: Mutex::new(KState::new()),
            current: AtomicU32::new(CURRENT_NONE),
            tracing: AtomicBool::new(false),
            rt: RtKernel::new(runtime),
        }
    }
}

/// The simulation owner: spawns processes, runs the scheduler, and tears
/// everything down on drop.
///
/// # Examples
///
/// ```
/// use sysc::{Simulation, SimTime};
///
/// let mut sim = Simulation::new();
/// let h = sim.handle();
/// let done = h.create_event("done");
/// h.spawn_thread("worker", sysc::SpawnMode::Immediate, move |ctx| {
///     ctx.wait_time(SimTime::from_us(5));
///     ctx.handle().notify(done);
/// });
/// let outcome = sim.run_until(SimTime::from_ms(1));
/// assert_eq!(outcome, sysc::RunOutcome::Starved);
/// assert_eq!(sim.handle().event_fire_count(done), 1);
/// ```
pub struct Simulation {
    k: Arc<Kernel>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now())
            .finish()
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at time zero on the default process
    /// runtime ([`Runtime::Coro`] where supported).
    pub fn new() -> Self {
        Self::with_runtime(Runtime::default())
    }

    /// Creates an empty simulation on an explicit process runtime.
    ///
    /// [`Runtime::Threaded`] runs each thread process on a pooled OS
    /// thread (the differential reference); [`Runtime::Coro`] runs the
    /// whole simulation on the driving thread with stackful coroutines.
    /// Both produce byte-identical schedules. On targets without a
    /// context-switch implementation, `Coro` degrades to `Threaded`.
    pub fn with_runtime(runtime: Runtime) -> Self {
        Simulation {
            k: Arc::new(Kernel::new(runtime)),
        }
    }

    /// The process runtime this simulation actually uses (after any
    /// target fallback).
    pub fn runtime(&self) -> Runtime {
        self.k.rt.runtime()
    }

    /// A cloneable handle for creating events/processes and notifying.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            k: Arc::clone(&self.k),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.k.st.lock().now
    }

    /// Kernel activity counters.
    pub fn stats(&self) -> KernelStats {
        self.k.st.lock().stats
    }

    /// Attaches a tracer (replacing any previous one).
    pub fn set_tracer(&self, tracer: Arc<dyn Tracer>) {
        self.k.st.lock().tracer = Some(tracer);
        self.k.tracing.store(true, Ordering::Relaxed);
    }

    /// Removes the tracer.
    pub fn clear_tracer(&self) {
        self.k.st.lock().tracer = None;
        self.k.tracing.store(false, Ordering::Relaxed);
    }

    /// Sets the delta-cycle limit per timestep (oscillation guard).
    pub fn set_max_deltas_per_timestep(&self, limit: u64) {
        self.k.st.lock().max_deltas_per_timestep = limit;
    }

    /// Runs until simulated time reaches `limit` (inclusive of activity
    /// scheduled exactly at `limit`) or no activity remains.
    ///
    /// On [`RunOutcome::ReachedLimit`] the simulation time is left at
    /// `limit` and the remaining activity stays pending, so `run_until`
    /// may be called again with a later limit (step mode).
    ///
    /// # Panics
    ///
    /// Re-raises any panic that occurred inside a process body.
    pub fn run_until(&mut self, limit: SimTime) -> RunOutcome {
        sched::run_kernel(&self.k, limit)
    }

    /// Runs for `d` more simulated time (see [`Simulation::run_until`]).
    pub fn run_for(&mut self, d: SimTime) -> RunOutcome {
        let limit = self.now().saturating_add(d);
        self.run_until(limit)
    }

    /// Runs until event starvation (or the delta guard trips).
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Earliest pending timed activity, if any (may include cancelled
    /// entries; intended for step-mode heuristics only).
    pub fn next_activity_at(&self) -> Option<SimTime> {
        self.k.st.lock().wheel.next_at().map(SimTime::from_ps)
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // Terminate every live thread process. The terminate handshake
        // is synchronous (the reply arrives only after the body has
        // unwound); the backing pool workers re-enlist in the ProcPool
        // (threaded) or the stacks return to the stack pool (coro) on
        // their own — there is nothing to join.
        let mut shareds = Vec::new();
        {
            let mut st = self.k.st.lock();
            for p in st.procs.iter_mut() {
                if let ProcBody::Thread { shared } = &mut p.body {
                    if p.state != ProcState::Finished {
                        p.state = ProcState::Finished;
                        shareds.push(shared.clone());
                    }
                }
            }
        }
        for s in shareds {
            // The reply is Finished (cooperative unwind) or Panicked if a
            // Drop impl inside the process misbehaved; either way we are
            // tearing down and must not panic here.
            let _ = s.resume(Cmd::Terminate);
        }
    }
}

/// Per-process context passed to thread-process bodies; provides the wait
/// primitives (the only way a process may consume simulated time).
pub struct ProcCtx {
    handle: SimHandle,
    shared: RtShared,
    id: ProcId,
    last_reason: WakeReason,
}

impl std::fmt::Debug for ProcCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcCtx")
            .field("id", &self.id)
            .field("last_reason", &self.last_reason)
            .finish_non_exhaustive()
    }
}

impl ProcCtx {
    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.handle.now()
    }

    /// The simulation handle (notify, spawn, ...).
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// The reason the most recent wait completed.
    pub fn last_wake_reason(&self) -> WakeReason {
        self.last_reason
    }

    fn suspend(&mut self, spec: WaitSpec) -> WakeReason {
        // Register the wait and chain-dispatch the next runnable under
        // one kernel-lock round — or get the wait served in place from
        // the fast-forward run budget — then park for (or immediately
        // take) our next turn.
        if let Some(reason) = sched::yield_from_process(&self.handle.k, self.id, &self.shared, spec)
        {
            self.last_reason = reason;
            return reason;
        }
        match self.shared.await_cmd() {
            Cmd::Run(reason) => {
                self.last_reason = reason;
                reason
            }
            Cmd::Terminate => raise_terminate(),
        }
    }

    /// Suspends for a duration of simulated time. A zero duration waits
    /// one delta cycle (SystemC `wait(SC_ZERO_TIME)`).
    ///
    /// When this process is the only activity before `now + d` (no
    /// runnable process, no pending delta work, no timed action at or
    /// before the deadline), the wait is served from the fast-forward
    /// run budget: simulated time advances in place, with no engine
    /// round trip (see the `crate::kernel` scheduler docs).
    pub fn wait_time(&mut self, d: SimTime) {
        self.suspend(WaitSpec::Time(d));
    }

    /// Suspends until `e` fires.
    pub fn wait_event(&mut self, e: EventId) {
        self.suspend(WaitSpec::Event(e));
    }

    /// Suspends until `e` fires or `timeout` elapses.
    ///
    /// Like [`ProcCtx::wait_time`], a wait that provably cannot be
    /// interrupted before its deadline — nothing runnable, and `e`
    /// cannot fire without some other activity running first — is
    /// served from the fast-forward run budget without suspending.
    pub fn wait_event_timeout(&mut self, e: EventId, timeout: SimTime) -> WaitOutcome {
        match self.suspend(WaitSpec::EventTimeout(e, timeout)) {
            WakeReason::Fired(_) => WaitOutcome::Fired,
            WakeReason::TimedOut => WaitOutcome::TimedOut,
            other => unreachable!("unexpected wake reason {other:?} for event-timeout wait"),
        }
    }

    /// Suspends until any of `events` fires; returns the one that did.
    pub fn wait_any(&mut self, events: &[EventId]) -> EventId {
        match self.suspend(WaitSpec::AnyEvent(events.to_vec())) {
            WakeReason::Fired(e) => e,
            other => unreachable!("unexpected wake reason {other:?} for any-event wait"),
        }
    }

    /// Suspends until every one of `events` has fired at least once.
    /// An empty list degenerates to one delta cycle.
    pub fn wait_all(&mut self, events: &[EventId]) {
        self.suspend(WaitSpec::AllEvents(events.to_vec()));
    }

    /// Gives up the processor until the next delta cycle.
    pub fn yield_delta(&mut self) {
        self.suspend(WaitSpec::YieldDelta);
    }

    /// Ends this process immediately, unwinding its stack (running
    /// `Drop` impls on the way out).
    pub fn exit(&mut self) -> ! {
        raise_terminate()
    }
}

/// Context passed to method-process callbacks.
pub struct MethodCtx {
    pub(crate) handle: SimHandle,
    pub(crate) id: ProcId,
    pub(crate) triggered_by: Option<EventId>,
}

impl std::fmt::Debug for MethodCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MethodCtx")
            .field("id", &self.id)
            .field("triggered_by", &self.triggered_by)
            .finish_non_exhaustive()
    }
}

impl MethodCtx {
    /// This method process's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.handle.now()
    }

    /// The simulation handle (notify, spawn, ...).
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// The event that triggered this activation (`None` for the initial
    /// run-at-start activation).
    pub fn triggered_by(&self) -> Option<EventId> {
        self.triggered_by
    }
}
