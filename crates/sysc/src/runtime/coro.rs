//! The stackful-coroutine process runtime.
//!
//! One [`CoroRt`] per simulation holds the *root context* (the thread
//! driving `run_until`, or whichever thread performs a terminate
//! handshake) and tracks which context currently executes. Each thread
//! process owns a [`CoroShared`]: a leased heap stack plus the saved
//! stack pointer of its suspended context, and the same command/reply
//! slots the threaded baton uses.
//!
//! # Exclusive-control discipline
//!
//! The kernel's baton invariant — at any instant exactly one party (the
//! kernel or one process) executes — carries over unchanged, and is
//! what justifies the `unsafe impl Send/Sync` here: every slot is only
//! ever touched by the context that currently has control, and control
//! transfer is a synchronous function call on one OS thread. Cross-
//! thread use (moving a `Simulation` between runs, or a terminate
//! handshake from another thread while the simulation is quiescent) is
//! sound because a suspended context is plain memory; the embedding
//! `&mut Simulation` receiver serialises the drivers.
//!
//! # Leak-free teardown
//!
//! A finished coroutine can never unwind its own final frames (control
//! leaves them forever), so nothing owning heap memory may be live
//! across the last switch. The wrapper job therefore *returns* its
//! [`Terminal`] action instead of performing it: by the time
//! [`coro_entry`] applies the terminal transfer, the job frame — and
//! every `Arc` the process ever held — has been popped. The terminal
//! transfer itself only moves values into slots owned by others and
//! drops its own `Arc` before switching.
//!
//! Stack recycling: a context cannot free the stack it is executing
//! on, so a dying coroutine deposits its stack into the runtime's
//! *graveyard* slot just before the final switch. The next context to
//! (re)gain control — any [`CoroRt::transfer`] return, or a fresh
//! [`coro_entry`] — reaps it back to the global pool. At most one death
//! can be outstanding, because control passes synchronously from the
//! dying context to a live one, which reaps before anything else can
//! die.

use std::cell::{Cell, UnsafeCell};
use std::ptr;
use std::sync::Arc;

use super::ctx;
use super::{Cmd, Reply, WakeReason};

/// A boxed coroutine job: the whole lifetime of one process body,
/// ending with the terminal transfer it wants performed.
pub(crate) type CoroJob = Box<dyn FnOnce() -> Terminal + Send>;

/// What a finished coroutine does with control, applied by
/// [`coro_entry`] *after* the job frame (and all its owned state) is
/// gone.
pub(crate) enum Terminal {
    /// Chained dispatch: hand control to this process with a wake
    /// reason (normal finish with a runnable successor).
    Post(Arc<CoroShared>, WakeReason),
    /// Hand control to the kernel's root context (normal finish, no
    /// successor the chain may run — or a pending panic to re-raise).
    Gate,
    /// Terminate handshake: deliver the reply to the resumer.
    Link(Reply),
}

thread_local! {
    /// Hands the `CoroShared` pointer to [`coro_entry`] across the
    /// first switch into a fresh stack (the switch itself carries no
    /// arguments). Set immediately before that switch; consumed as the
    /// very first action on the new stack — single-threaded, so no
    /// other transfer can intervene.
    static STARTING: Cell<*const CoroShared> = const { Cell::new(ptr::null()) };
}

/// Per-simulation coroutine-runtime state: the root context's save slot
/// and the "who executes now" tracker.
pub(crate) struct CoroRt {
    /// Save slot of the root context (the kernel driver).
    root_slot: UnsafeCell<*mut u8>,
    /// Save slot of the context currently executing. Every transfer
    /// retargets this *before* switching, so a context that regains
    /// control finds itself named here.
    current: Cell<*mut *mut u8>,
    /// The evaluate-phase gate token (see [`crate::process::Gate`]):
    /// set by the switch that hands control to the root, consumed by
    /// the kernel loop's `wait`.
    token: Cell<bool>,
    /// Stack of the most recently finished coroutine, deposited by its
    /// final switch and reaped by the next context to gain control.
    graveyard: UnsafeCell<Option<ctx::CoroStack>>,
}

// SAFETY: see the module docs — all fields are only touched by the
// single context holding control; the embedding `&mut Simulation`
// serialises drivers across threads.
unsafe impl Send for CoroRt {}
unsafe impl Sync for CoroRt {}

impl CoroRt {
    pub(crate) fn new() -> Arc<CoroRt> {
        let rt = Arc::new(CoroRt {
            root_slot: UnsafeCell::new(ptr::null_mut()),
            current: Cell::new(ptr::null_mut()),
            token: Cell::new(false),
            graveyard: UnsafeCell::new(None),
        });
        // The root executes first; its slot address is stable inside
        // the Arc allocation.
        rt.current.set(rt.root_slot.get());
        rt
    }

    /// Switches from the current context to `target`, saving the
    /// current one into whatever slot [`CoroRt::current`] names.
    /// Returns when some later transfer switches back.
    fn transfer(&self, target: *mut *mut u8) {
        let save = self.current.replace(target);
        // SAFETY: `save` and `target` are live slots (CoroRt/CoroShared
        // allocations pinned by the simulation); `target` holds a stack
        // pointer forged by `init_stack` or saved by a previous switch,
        // and its context is suspended (single-context discipline).
        unsafe { ctx::rtk_sysc_ctx_switch(save, target) };
        // Control is back: if a coroutine died while we were suspended,
        // its stack waits in the graveyard.
        self.reap();
    }

    /// Returns the most recently finished coroutine's stack (if any) to
    /// the pool. Called wherever a context (re)gains control; the dead
    /// stack is never the one currently executing.
    fn reap(&self) {
        // SAFETY: we hold control; the deposit happened strictly before
        // the switch that gave us control.
        if let Some(stack) = unsafe { (*self.graveyard.get()).take() } {
            ctx::give_back(stack);
        }
    }

    /// Process side: hands control to the kernel's root context
    /// (the coro analogue of the gate signal). Returns when this
    /// process is next dispatched.
    pub(crate) fn signal(&self) {
        debug_assert!(!self.token.get(), "gate signalled twice without a wait");
        self.token.set(true);
        self.transfer(self.root_slot.get());
    }

    /// Kernel side: consumes the token set by the switch that brought
    /// control back to the root.
    pub(crate) fn wait(&self) {
        assert!(
            self.token.replace(false),
            "kernel regained control without a gate token"
        );
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoroState {
    /// Spawned; no stack leased yet (the entry job sits in `entry`).
    NotStarted,
    /// Stack leased, context live (running or suspended).
    Started,
    /// Control has permanently left the coroutine.
    Finished,
}

/// One process's coroutine context plus its protocol slots.
pub(crate) struct CoroShared {
    rt: Arc<CoroRt>,
    /// Saved stack pointer while this context is suspended.
    slot: UnsafeCell<*mut u8>,
    cmd: UnsafeCell<Option<Cmd>>,
    reply: UnsafeCell<Option<Reply>>,
    /// The resumer's save slot during a terminate handshake; the
    /// victim's final switch targets it.
    link: Cell<*mut *mut u8>,
    terminating: Cell<bool>,
    state: Cell<CoroState>,
    /// The wrapper job, parked here until first activation. Holds an
    /// `Arc` back to this `CoroShared` (for the `ProcCtx`); the cycle
    /// breaks when the job is taken at start — or dropped by the
    /// never-started terminate short-circuit.
    entry: UnsafeCell<Option<CoroJob>>,
    stack: UnsafeCell<Option<ctx::CoroStack>>,
}

// SAFETY: exclusive-control discipline (module docs) — every cell is
// only accessed by the context holding control, on one thread at a
// time, serialised by the embedding simulation.
unsafe impl Send for CoroShared {}
unsafe impl Sync for CoroShared {}

impl CoroShared {
    pub(crate) fn new(rt: Arc<CoroRt>) -> Arc<CoroShared> {
        Arc::new(CoroShared {
            rt,
            slot: UnsafeCell::new(ptr::null_mut()),
            cmd: UnsafeCell::new(None),
            reply: UnsafeCell::new(None),
            link: Cell::new(ptr::null_mut()),
            terminating: Cell::new(false),
            state: Cell::new(CoroState::NotStarted),
            entry: UnsafeCell::new(None),
            stack: UnsafeCell::new(None),
        })
    }

    /// Parks the wrapper job until first activation (the coro analogue
    /// of handing a job to the thread pool).
    pub(crate) fn set_entry(&self, job: CoroJob) {
        // SAFETY: called once at spawn, before any transfer can reach
        // this context.
        let slot = unsafe { &mut *self.entry.get() };
        debug_assert!(slot.is_none(), "coroutine entry set twice");
        *slot = Some(job);
    }

    /// Leases a stack and forges the bootstrap frame; first switch-in
    /// lands in [`coro_entry`].
    fn start(&self) {
        let stack = ctx::lease();
        let sp = ctx::init_stack(&stack, coro_entry);
        // SAFETY: we hold control and the context is not yet live.
        unsafe {
            *self.slot.get() = sp;
            *self.stack.get() = Some(stack);
        }
        self.state.set(CoroState::Started);
        STARTING.with(|s| s.set(self as *const CoroShared));
    }

    /// Hands control to this process with `cmd` (chained dispatch).
    /// Switches into the coroutine; returns when control next comes
    /// back to the calling context (which may be immediately, for a
    /// self-post).
    pub(crate) fn post(&self, cmd: Cmd) {
        // SAFETY: the caller holds control; the process side consumes
        // the slot only after this transfer gives it control.
        unsafe {
            let c = &mut *self.cmd.get();
            debug_assert!(c.is_none(), "resume while a command is pending");
            *c = Some(cmd);
        }
        if self.state.get() == CoroState::NotStarted {
            self.start();
        }
        debug_assert_eq!(
            self.state.get(),
            CoroState::Started,
            "post to a finished coroutine"
        );
        self.rt.transfer(self.slot.get());
    }

    /// The synchronous terminate handshake (kill / teardown): switches
    /// into the victim so it unwinds, and returns its reply. The
    /// victim's stack is recycled here — control has provably left it.
    pub(crate) fn resume(&self, cmd: Cmd) -> Reply {
        debug_assert!(
            matches!(cmd, Cmd::Terminate),
            "coro resume is the terminate handshake only"
        );
        self.terminating.set(true);
        match self.state.get() {
            // Never started: drop the parked job (running it would only
            // unwind immediately) — no stack was ever leased.
            CoroState::NotStarted => {
                // SAFETY: we hold control; no context exists to race.
                unsafe { (*self.entry.get()).take() };
                self.state.set(CoroState::Finished);
                Reply::Finished
            }
            CoroState::Finished => Reply::Finished,
            CoroState::Started => {
                // SAFETY: we hold control (the victim is suspended).
                unsafe {
                    let c = &mut *self.cmd.get();
                    debug_assert!(c.is_none(), "terminate raced a pending command");
                    *c = Some(cmd);
                }
                // The victim's final switch must come back to *us*.
                self.link.set(self.rt.current.get());
                self.rt.transfer(self.slot.get());
                // Control is back: the victim finished through the link
                // (its stack went through the graveyard, reaped by the
                // transfer above).
                debug_assert_eq!(self.state.get(), CoroState::Finished);
                // SAFETY: we hold control and the victim is finished —
                // nothing can touch its reply cell anymore.
                unsafe { (*self.reply.get()).take() }.expect("terminated coroutine left no reply")
            }
        }
    }

    /// Process side: takes the command that scheduled this activation.
    /// Non-blocking — under coro, *having control* is the rendezvous.
    pub(crate) fn await_cmd(&self) -> Cmd {
        // SAFETY: this context holds control; the poster stored the
        // command before switching to us.
        unsafe { (*self.cmd.get()).take() }.expect("coroutine dispatched without a command")
    }

    /// `true` once a terminate handshake is in flight.
    pub(crate) fn is_terminating(&self) -> bool {
        self.terminating.get()
    }

    /// The coroutine's last act (runs on its own stack, with the job
    /// frame already popped): publish the terminal action's payload,
    /// drop any owned handles, switch away forever.
    fn finish_with(&self, terminal: Terminal) -> ! {
        self.state.set(CoroState::Finished);
        let target: *mut *mut u8 = match terminal {
            Terminal::Post(next, reason) => {
                // SAFETY: we hold control; `next` is suspended (or not
                // yet started).
                unsafe {
                    let c = &mut *next.cmd.get();
                    debug_assert!(c.is_none(), "chained finish raced a pending command");
                    *c = Some(Cmd::Run(reason));
                }
                if next.state.get() == CoroState::NotStarted {
                    next.start();
                }
                let t = next.slot.get();
                // The process table keeps `next` alive; dropping our
                // Arc *before* the switch keeps this dead stack free of
                // owned handles.
                drop(next);
                t
            }
            Terminal::Gate => {
                debug_assert!(!self.rt.token.get(), "gate signalled twice without a wait");
                self.rt.token.set(true);
                self.rt.root_slot.get()
            }
            Terminal::Link(reply) => {
                // SAFETY: the resumer consumes the slot only after this
                // switch returns control to it.
                unsafe {
                    *self.reply.get() = Some(reply);
                }
                self.link.get()
            }
        };
        // Deposit our stack for the target context to reap — we are
        // still executing on it, so we cannot free it ourselves. (Moving
        // the handle does not touch the stack memory.)
        // SAFETY: we hold control; any earlier deposit was reaped when
        // this context gained control.
        unsafe {
            let g = &mut *self.rt.graveyard.get();
            debug_assert!(
                g.is_none(),
                "two coroutine deaths without an intervening reap"
            );
            *g = (*self.stack.get()).take();
        }
        self.rt.current.set(target);
        // SAFETY: `target` is a live suspended context; our own slot
        // serves as the (dead) save destination — nothing ever switches
        // back into a finished coroutine.
        unsafe { ctx::rtk_sysc_ctx_switch(self.slot.get(), target) };
        unreachable!("control returned to a finished coroutine")
    }
}

impl Drop for CoroRt {
    fn drop(&mut self) {
        // Normally empty: the last death's deposit is reaped by the
        // root's transfer return. Kept as a backstop for leaked
        // mid-flight simulations.
        self.reap();
    }
}

impl Drop for CoroShared {
    fn drop(&mut self) {
        // Finished coroutines recycled their stack through the
        // graveyard. A `Started` stack here means the simulation itself
        // was leaked mid-flight; the stack memory is freed (by
        // `CoroStack::drop`) but its suspended frames never unwind.
        debug_assert!(
            self.state.get() != CoroState::Finished || self.stack.get_mut().is_none(),
            "finished coroutine kept its stack past the graveyard"
        );
    }
}

/// Every coroutine's first (and outermost) frame. `extern "C"` so an
/// unwind escaping the job's `catch_unwind` aborts instead of running
/// off the forged bootstrap frame.
extern "C" fn coro_entry() -> ! {
    let me = STARTING.with(|s| s.replace(ptr::null()));
    debug_assert!(
        !me.is_null(),
        "coroutine entered without a STARTING pointer"
    );
    // SAFETY: the process table holds the `CoroShared` alive for the
    // whole simulation, which in turn outlives every moment this
    // coroutine can run (teardown terminates it first).
    let me = unsafe { &*me };
    // A fresh stack is also a (re)gain-control point: a chained finish
    // may have started us directly, with its own death still unreaped.
    me.rt.reap();
    // SAFETY: this context holds control, and the entry job was
    // deposited by `set_entry` strictly before the first transfer that
    // could have started this stack.
    let job = unsafe { (*me.entry.get()).take() }.expect("coroutine started without an entry job");
    let terminal = job();
    // The job frame is gone: nothing owned remains on this stack except
    // what `terminal` carries, which `finish_with` disposes of before
    // the final switch.
    me.finish_with(terminal)
}
