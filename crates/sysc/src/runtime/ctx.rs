//! The raw stackful context switch and the recycling stack pool.
//!
//! A coroutine context is nothing but a saved stack pointer: the switch
//! pushes every callee-saved register of the C ABI onto the *current*
//! stack, stores `rsp`/`sp` into the outgoing context's save slot,
//! loads the incoming context's saved stack pointer and pops the same
//! registers back. Caller-saved registers need no treatment — from the
//! compiler's point of view `rtk_sysc_ctx_switch` is an ordinary
//! `extern "C"` call, so it has already spilled everything else.
//!
//! # Bootstrap
//!
//! A coroutine that has never run has no pushed registers yet, so
//! [`init_stack`] forges the frame the switch expects: zeroed register
//! slots and a "return address" pointing at the entry trampoline. The
//! first switch into the context pops the zeros and `ret`s straight
//! into the trampoline, on the fresh stack, with the alignment a
//! normal `call` would have produced (x86-64: `rsp ≡ 8 (mod 16)` at
//! function entry; aarch64: `sp` 16-aligned).
//!
//! # Safety argument
//!
//! * The save slot written by the switch lives in a heap allocation
//!   (`Arc`-pinned) that outlives every switch through it.
//! * Exactly one context per OS thread executes at any instant; the
//!   switch is only ever called by the single-threaded coroutine
//!   runtime ([`super::coro`]), which tracks the current context — so
//!   no stack is ever entered twice concurrently.
//! * Unwinding never crosses a switch frame: every coroutine body runs
//!   under `catch_unwind` *inside* its own stack, and the entry
//!   trampoline is `extern "C"` (unwind past it aborts).
//! * Floating-point *control* state (`MXCSR`/`FPCR`, x87 CW) is not
//!   saved: the simulation never changes rounding or exception modes,
//!   and all FP *data* registers are caller-saved (x86-64 SysV) or
//!   saved explicitly (aarch64 `d8`–`d15`).
//!
//! # Stacks
//!
//! Stacks are plain 16-aligned heap allocations (no guard page: the
//! workspace is `std`-only by design, and `mmap`/`mprotect` are out of
//! reach without `libc`). Two mitigations bound the risk: the stacks
//! are generous ([`STACK_SIZE`]) compared to the shallow simulation
//! bodies, and a canary word at the low end is verified every time a
//! stack is recycled or dropped — an overflow deep enough to matter
//! trips it. The threaded runtime remains available for workloads that
//! need guard-paged, gigabyte-deep stacks.
//!
//! The [`StackPool`] plays the role [`crate::pool::ProcPool`] plays for
//! the threaded runtime: farm campaigns build thousands of short-lived
//! simulations, and recycling a finished coroutine's stack skips both
//! the allocation and the page faults of first touch.

use std::alloc::{alloc, dealloc, Layout};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

/// Stack size of one coroutine (bytes). Thread-process bodies in this
/// workspace are shallow (RTOS service calls over the sysc wait
/// primitives); 512 KiB leaves two orders of magnitude of headroom.
pub(crate) const STACK_SIZE: usize = 512 * 1024;

/// Idle stacks kept by the global pool after a burst (matches the
/// spirit of `pool::MAX_IDLE`; a stack is much cheaper than a thread,
/// so the cap is mostly about peak-RSS hygiene after huge campaigns).
const MAX_IDLE: usize = 1024;

/// Written at the lowest addresses of every stack; checked on recycle
/// and drop. A coroutine overflowing its stack scribbles here first
/// (frames grow downward), so a tripped canary names the defect
/// instead of silent heap corruption.
const CANARY: u64 = 0x5AFE_57AC_0CA1_7A17_u64;

#[cfg(target_arch = "x86_64")]
core::arch::global_asm!(
    // System V AMD64: callee-saved rbx, rbp, r12-r15. 6 pushes keep
    // rsp ≡ 8 (mod 16) relative to the call, and the forged bootstrap
    // frame reproduces the same shape (see `init_stack`).
    ".text",
    ".globl rtk_sysc_ctx_switch",
    ".p2align 4",
    "rtk_sysc_ctx_switch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov [rdi], rsp",
    "mov rsp, [rsi]",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
);

#[cfg(target_arch = "aarch64")]
core::arch::global_asm!(
    // AAPCS64: callee-saved x19-x28, fp (x29), lr (x30) and the low 64
    // bits of v8-v15 (d8-d15). 20 slots = 160 bytes, 16-aligned.
    ".text",
    ".globl rtk_sysc_ctx_switch",
    ".p2align 4",
    "rtk_sysc_ctx_switch:",
    "sub sp, sp, #160",
    "stp x19, x20, [sp, #0]",
    "stp x21, x22, [sp, #16]",
    "stp x23, x24, [sp, #32]",
    "stp x25, x26, [sp, #48]",
    "stp x27, x28, [sp, #64]",
    "stp x29, x30, [sp, #80]",
    "stp d8,  d9,  [sp, #96]",
    "stp d10, d11, [sp, #112]",
    "stp d12, d13, [sp, #128]",
    "stp d14, d15, [sp, #144]",
    "mov x9, sp",
    "str x9, [x0]",
    "ldr x9, [x1]",
    "mov sp, x9",
    "ldp x19, x20, [sp, #0]",
    "ldp x21, x22, [sp, #16]",
    "ldp x23, x24, [sp, #32]",
    "ldp x25, x26, [sp, #48]",
    "ldp x27, x28, [sp, #64]",
    "ldp x29, x30, [sp, #80]",
    "ldp d8,  d9,  [sp, #96]",
    "ldp d10, d11, [sp, #112]",
    "ldp d12, d13, [sp, #128]",
    "ldp d14, d15, [sp, #144]",
    "add sp, sp, #160",
    "ret",
);

extern "C" {
    /// Saves the current execution context's stack pointer into
    /// `*save`, restores the one in `*load`, and continues executing
    /// there. Returns (into the *saved* context) only when some later
    /// switch restores it.
    ///
    /// # Safety
    ///
    /// `*load` must hold a stack pointer produced by a previous save
    /// through this function or forged by [`init_stack`], its stack
    /// must be live and not currently executing, and both slots must
    /// stay valid for the whole suspension.
    pub(crate) fn rtk_sysc_ctx_switch(save: *mut *mut u8, load: *const *mut u8);
}

/// One heap-allocated coroutine stack (16-aligned, canary-armed).
pub(crate) struct CoroStack {
    base: *mut u8,
    size: usize,
}

// SAFETY: the stack is plain memory; ownership (and therefore any
// access) moves with the struct.
unsafe impl Send for CoroStack {}

impl CoroStack {
    fn layout(size: usize) -> Layout {
        Layout::from_size_align(size, 16).expect("stack layout")
    }

    fn new(size: usize) -> Self {
        // SAFETY: non-zero size, valid 16-byte alignment.
        let base = unsafe { alloc(Self::layout(size)) };
        assert!(!base.is_null(), "coroutine stack allocation failed");
        let s = CoroStack { base, size };
        // SAFETY: the first 8 bytes belong to the allocation.
        unsafe { (s.base as *mut u64).write(CANARY) };
        s
    }

    /// One-past-the-highest address (the initial stack pointer grows
    /// down from here).
    pub(crate) fn top(&self) -> *mut u8 {
        // SAFETY: one-past-the-end of the allocation is a valid
        // provenance-carrying pointer.
        unsafe { self.base.add(self.size) }
    }

    /// `false` once the canary word has been overwritten (stack
    /// overflow happened at some point of the stack's tenure).
    pub(crate) fn canary_intact(&self) -> bool {
        // SAFETY: the first 8 bytes belong to the allocation.
        unsafe { (self.base as *const u64).read() == CANARY }
    }
}

impl Drop for CoroStack {
    fn drop(&mut self) {
        // No canary assert here: drop may run during an unwind (e.g.
        // the give-back check just fired) and a panicking destructor
        // aborts. `give_back` is the checked path.
        // SAFETY: `base` came from `alloc` with this exact layout.
        unsafe { dealloc(self.base, Self::layout(self.size)) };
    }
}

/// Forges the bootstrap frame on a fresh stack so the first switch into
/// it `ret`s into `entry`; returns the initial saved stack pointer.
///
/// `entry` must never return: the slot above it holds a null "return
/// address" so an accidental return faults immediately instead of
/// executing garbage.
pub(crate) fn init_stack(stack: &CoroStack, entry: extern "C" fn() -> !) -> *mut u8 {
    let top = stack.top() as *mut u64;
    init_stack_arch(top, entry as usize as u64)
}

// Layout (descending): [top-8] null guard, [top-16] entry, then six
// zeroed callee-saved slots. After the restore sequence pops the
// zeros and `ret`s, execution is at `entry` with rsp = top-8 —
// exactly the alignment a `call entry` would have left.
#[cfg(target_arch = "x86_64")]
fn init_stack_arch(top: *mut u64, entry: u64) -> *mut u8 {
    // SAFETY: all writes land within the topmost 64 bytes of the
    // caller-owned stack allocation.
    unsafe {
        top.sub(1).write(0);
        top.sub(2).write(entry);
        for i in 3..=8 {
            top.sub(i).write(0);
        }
        top.sub(8) as *mut u8
    }
}

// Layout: the 160-byte register frame at [top-160], all zero except
// the x30 (lr) slot at offset 88, which carries `entry`; the final
// `ret` branches there with sp = top (16-aligned). x29 = 0
// terminates backtraces.
#[cfg(target_arch = "aarch64")]
fn init_stack_arch(top: *mut u64, entry: u64) -> *mut u8 {
    // SAFETY: all writes land within the topmost 160 bytes of the
    // caller-owned stack allocation.
    unsafe {
        let sp = top.sub(20);
        for i in 0..20 {
            sp.add(i).write(0);
        }
        sp.add(11).write(entry);
        sp as *mut u8
    }
}

/// Counters of the coroutine stack pool (monotonic since process
/// start; see [`stack_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackPoolStats {
    /// Stacks ever allocated by the pool.
    pub stacks_allocated: u64,
    /// Stack leases served (one per started coroutine).
    pub leases: u64,
    /// Leases served by a recycled stack instead of a fresh allocation.
    pub recycled: u64,
    /// Stacks currently parked in the pool.
    pub idle_now: usize,
}

/// A recycling pool of coroutine stacks — the coroutine runtime's
/// analogue of the threaded runtime's [`crate::pool::ProcPool`].
pub(crate) struct StackPool {
    idle: Mutex<Vec<CoroStack>>,
    allocated: AtomicU64,
    leases: AtomicU64,
    recycled: AtomicU64,
    max_idle: usize,
}

impl StackPool {
    pub(crate) fn new(max_idle: usize) -> Self {
        StackPool {
            idle: Mutex::new(Vec::new()),
            allocated: AtomicU64::new(0),
            leases: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            max_idle,
        }
    }

    /// Leases a stack: recycled when one is parked, freshly allocated
    /// otherwise.
    pub(crate) fn lease(&self) -> CoroStack {
        self.leases.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = self.idle.lock().pop() {
            self.recycled.fetch_add(1, Ordering::Relaxed);
            return s;
        }
        self.allocated.fetch_add(1, Ordering::Relaxed);
        CoroStack::new(STACK_SIZE)
    }

    /// Returns a stack whose coroutine has permanently exited. Verifies
    /// the canary; stacks beyond the idle cap are freed instead of
    /// parked.
    pub(crate) fn give_back(&self, stack: CoroStack) {
        assert!(
            stack.canary_intact(),
            "coroutine stack overflow detected (canary smashed on recycle)"
        );
        let mut idle = self.idle.lock();
        if idle.len() < self.max_idle {
            idle.push(stack);
        }
        // Beyond the cap: `stack` drops here and the memory is freed.
    }

    /// Allocates idle stacks up front so a campaign's first wave of
    /// coroutines doesn't pay allocation + first-touch latency.
    /// Idempotent: existing idle stacks count toward `n`.
    pub(crate) fn prewarm(&self, n: usize) {
        let mut idle = self.idle.lock();
        while idle.len() < n.min(self.max_idle) {
            self.allocated.fetch_add(1, Ordering::Relaxed);
            idle.push(CoroStack::new(STACK_SIZE));
        }
    }

    pub(crate) fn stats(&self) -> StackPoolStats {
        StackPoolStats {
            stacks_allocated: self.allocated.load(Ordering::Relaxed),
            leases: self.leases.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            idle_now: self.idle.lock().len(),
        }
    }
}

fn global() -> &'static StackPool {
    static GLOBAL: OnceLock<StackPool> = OnceLock::new();
    GLOBAL.get_or_init(|| StackPool::new(MAX_IDLE))
}

/// Leases from the global pool.
pub(crate) fn lease() -> CoroStack {
    global().lease()
}

/// Returns a stack to the global pool.
pub(crate) fn give_back(stack: CoroStack) {
    global().give_back(stack)
}

/// Pre-allocates up to `n` idle stacks on the global pool (the
/// coroutine analogue of [`crate::pool::prewarm`]).
pub fn prewarm(n: usize) {
    global().prewarm(n)
}

/// Counters of the global stack pool.
pub fn stack_stats() -> StackPoolStats {
    global().stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacks_are_recycled_and_canary_checked() {
        let pool = StackPool::new(4);
        let a = pool.lease();
        let a_base = a.base;
        pool.give_back(a);
        let b = pool.lease();
        assert_eq!(b.base, a_base, "lease must reuse the parked stack");
        let s = pool.stats();
        assert_eq!(s.stacks_allocated, 1);
        assert_eq!(s.leases, 2);
        assert_eq!(s.recycled, 1);
        pool.give_back(b);
        assert_eq!(pool.stats().idle_now, 1);
    }

    #[test]
    fn idle_cap_frees_excess_stacks() {
        let pool = StackPool::new(1);
        let a = pool.lease();
        let b = pool.lease();
        pool.give_back(a);
        pool.give_back(b); // beyond the cap: freed, not parked
        assert_eq!(pool.stats().idle_now, 1);
        assert_eq!(pool.stats().stacks_allocated, 2);
    }

    #[test]
    fn prewarm_is_idempotent_and_capped() {
        let pool = StackPool::new(4);
        pool.prewarm(2);
        assert_eq!(pool.stats().idle_now, 2);
        pool.prewarm(2);
        assert_eq!(pool.stats().stacks_allocated, 2);
        pool.prewarm(100);
        assert_eq!(pool.stats().idle_now, 4);
        assert_eq!(pool.stats().stacks_allocated, 4);
    }

    #[test]
    #[should_panic(expected = "canary smashed")]
    fn smashed_canary_is_detected_on_recycle() {
        let pool = StackPool::new(4);
        let s = pool.lease();
        // Simulate an overflow reaching the low end of the stack.
        // SAFETY: the first 8 bytes belong to the leased allocation.
        unsafe { (s.base as *mut u64).write(0) };
        pool.give_back(s);
    }
}
