//! Process runtimes: how thread-process bodies get a suspendable stack.
//!
//! The kernel schedules *contexts*; it does not care what a context is
//! made of. Two backends implement the same transfer protocol:
//!
//! * **Threaded** (`crate::process`, [`crate::pool`]) — each process
//!   body runs on a pooled OS thread under the lock-free baton
//!   protocol. Handoffs cost an unpark/park pair in the worst case.
//! * **Coro** (`coro`, `ctx`) — each process body runs on a
//!   heap-allocated stack as a hand-rolled stackful coroutine; the
//!   whole simulation executes on **one** host thread and a handoff is
//!   a userspace register swap (no syscalls, no parking).
//!
//! Both backends speak the identical call protocol, so the scheduler
//! (`crate::kernel`) is runtime-agnostic:
//!
//! | op          | threaded                       | coro                          |
//! |-------------|--------------------------------|-------------------------------|
//! | `post`      | store cmd, flip baton, unpark  | store cmd, switch into target |
//! | `await_cmd` | park until our turn, take cmd  | take cmd (control is here)    |
//! | `release`   | flip baton back                | no-op (transfer does it)      |
//! | `resume`    | post + wait for reply          | switch in, reply via link     |
//! | gate signal | set token, unpark kernel       | set token, switch to root     |
//! | gate wait   | park until token               | assert + consume token        |
//!
//! The protocol vocabulary (`Cmd`, `Reply`, [`WakeReason`],
//! `WaitSpec`, the terminate unwind) lives here; the backends only
//! implement the transfer mechanics.

use std::any::Any;
use std::panic;
use std::sync::Arc;

use crate::ids::EventId;
use crate::process::{Gate, ProcShared};
use crate::time::SimTime;

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
pub(crate) mod coro;
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
mod ctx;

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
pub use ctx::{prewarm as prewarm_stacks, stack_stats, StackPoolStats};

/// Which process runtime a [`crate::Simulation`] uses.
///
/// Both runtimes produce byte-identical schedules: every scheduling
/// decision flows through the same kernel state machine; only the
/// control-transfer mechanics differ. `Threaded` is kept as the
/// differential reference (and for targets without a hand-rolled
/// context switch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Runtime {
    /// One pooled OS thread per process, lock-free baton handoff.
    Threaded,
    /// Stackful coroutines on heap stacks; the whole simulation runs on
    /// the driving thread. Falls back to `Threaded` on targets without
    /// a context-switch implementation (see [`coro_supported`]).
    #[default]
    Coro,
}

impl Runtime {
    /// Maps `Coro` to `Threaded` on targets without a switch routine.
    pub fn resolve(self) -> Runtime {
        match self {
            Runtime::Coro if !coro_supported() => Runtime::Threaded,
            r => r,
        }
    }

    /// Stable lowercase name (CLI / report metadata).
    pub fn as_str(self) -> &'static str {
        match self {
            Runtime::Threaded => "threaded",
            Runtime::Coro => "coro",
        }
    }
}

impl std::str::FromStr for Runtime {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threaded" => Ok(Runtime::Threaded),
            "coro" => Ok(Runtime::Coro),
            other => Err(format!(
                "unknown runtime {other:?} (expected \"threaded\" or \"coro\")"
            )),
        }
    }
}

impl std::fmt::Display for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `true` when this target has a coroutine context switch (x86_64,
/// aarch64). Elsewhere [`Runtime::Coro`] silently degrades to the
/// threaded backend.
pub fn coro_supported() -> bool {
    cfg!(any(target_arch = "x86_64", target_arch = "aarch64"))
}

// ---------------------------------------------------------------------
// Protocol vocabulary (shared by both backends and the kernel).
// ---------------------------------------------------------------------

/// Why a suspended process was resumed; returned by the wait primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// First activation of the process.
    Start,
    /// A `wait_time` completed.
    TimeElapsed,
    /// The awaited event (or one of a `wait_any` set) fired.
    Fired(EventId),
    /// A `wait_event_timeout` expired before the event fired.
    TimedOut,
    /// Every event of a `wait_all` set has fired.
    AllFired,
    /// A `yield_delta` completed (next delta cycle reached).
    Yielded,
}

/// What a process asks the kernel to do when it suspends.
#[derive(Debug, Clone)]
pub(crate) enum WaitSpec {
    /// Sleep for a duration of simulated time.
    Time(SimTime),
    /// Sleep until an event fires.
    Event(EventId),
    /// Sleep until an event fires or a timeout elapses, whichever is first.
    EventTimeout(EventId, SimTime),
    /// Sleep until any of the listed events fires.
    AnyEvent(Vec<EventId>),
    /// Sleep until all of the listed events have fired at least once.
    AllEvents(Vec<EventId>),
    /// Give up the processor until the next delta cycle.
    YieldDelta,
}

/// Kernel-to-process command.
pub(crate) enum Cmd {
    /// Continue execution; carries the reason the wait completed.
    Run(WakeReason),
    /// Unwind and exit (process kill / simulation teardown).
    Terminate,
}

/// Process-to-kernel reply on the terminate handshake (normal yields
/// do their own scheduler bookkeeping and never construct a reply).
pub(crate) enum Reply {
    /// The process body returned (or was terminated cooperatively).
    Finished,
    /// The process body panicked; payload to be re-thrown by the kernel.
    Panicked(Box<dyn Any + Send>),
}

/// Panic payload used to unwind a process stack on termination.
///
/// The wrapper installed by the kernel catches this payload and converts
/// it into a clean [`Reply::Finished`], so user `Drop` impls still run.
pub(crate) struct TerminateSignal;

/// Converts a caught panic payload into a reply, recognising cooperative
/// termination.
pub(crate) fn reply_from_panic(payload: Box<dyn Any + Send>) -> Reply {
    if payload.is::<TerminateSignal>() {
        Reply::Finished
    } else {
        Reply::Panicked(payload)
    }
}

/// Unwinds the current process stack as a cooperative termination.
pub(crate) fn raise_terminate() -> ! {
    panic::resume_unwind(Box::new(TerminateSignal))
}

// ---------------------------------------------------------------------
// Runtime-dispatched handles used by the kernel.
// ---------------------------------------------------------------------

/// The per-process transfer handle: the baton rendezvous (threaded) or
/// the coroutine context (coro), behind one protocol.
#[derive(Clone)]
pub(crate) enum RtShared {
    Threaded(Arc<ProcShared>),
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    Coro(Arc<coro::CoroShared>),
}

impl RtShared {
    /// Hands control to this process with `cmd`, without waiting for
    /// anything back (chained dispatch). Under coro this *switches* into
    /// the process and returns when control next comes back to the
    /// calling context.
    pub(crate) fn post(&self, cmd: Cmd) {
        match self {
            RtShared::Threaded(s) => s.post(cmd),
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            RtShared::Coro(s) => s.post(cmd),
        }
    }

    /// The synchronous terminate handshake: delivers `cmd` (must be
    /// [`Cmd::Terminate`]) and blocks until the body has unwound,
    /// returning its reply.
    pub(crate) fn resume(&self, cmd: Cmd) -> Reply {
        match self {
            RtShared::Threaded(s) => s.resume(cmd),
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            RtShared::Coro(s) => s.resume(cmd),
        }
    }

    /// Process side: obtains the next command (parking under threaded;
    /// a plain slot take under coro, where having control *is* the
    /// rendezvous).
    pub(crate) fn await_cmd(&self) -> Cmd {
        match self {
            RtShared::Threaded(s) => s.await_cmd(),
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            RtShared::Coro(s) => s.await_cmd(),
        }
    }

    /// Process side: gives the baton back before the kernel lock drops
    /// (threaded bookkeeping; a no-op under coro, where the subsequent
    /// transfer hands control over).
    pub(crate) fn release(&self) {
        match self {
            RtShared::Threaded(s) => s.release(),
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            RtShared::Coro(_) => {}
        }
    }

    /// Process side: final reply of the terminate handshake (threaded
    /// wrapper only; the coro wrapper ends by returning a
    /// [`coro::Terminal`] instead).
    pub(crate) fn finish(&self, reply: Reply) {
        match self {
            RtShared::Threaded(s) => s.finish(reply),
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            RtShared::Coro(_) => {
                unreachable!("coro wrapper finishes via Terminal, not RtShared::finish")
            }
        }
    }

    /// `true` once a terminate handshake is in flight for this process.
    pub(crate) fn is_terminating(&self) -> bool {
        match self {
            RtShared::Threaded(s) => s.is_terminating(),
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            RtShared::Coro(s) => s.is_terminating(),
        }
    }
}

impl std::fmt::Debug for RtShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtShared::Threaded(_) => f.write_str("RtShared::Threaded"),
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            RtShared::Coro(_) => f.write_str("RtShared::Coro"),
        }
    }
}

/// The kernel-side runtime handle: the evaluate-phase gate plus the
/// factory for per-process transfer handles.
pub(crate) enum RtKernel {
    Threaded {
        /// The kernel thread's park/unpark rendezvous.
        gate: Gate,
    },
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    Coro {
        /// The shared coroutine-runtime state (root context + token).
        rt: Arc<coro::CoroRt>,
    },
}

impl RtKernel {
    pub(crate) fn new(runtime: Runtime) -> Self {
        match runtime.resolve() {
            Runtime::Threaded => RtKernel::Threaded { gate: Gate::new() },
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            Runtime::Coro => RtKernel::Coro {
                rt: coro::CoroRt::new(),
            },
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            Runtime::Coro => unreachable!("Runtime::resolve maps Coro away on this target"),
        }
    }

    /// Which runtime this kernel ended up with (after target fallback).
    pub(crate) fn runtime(&self) -> Runtime {
        match self {
            RtKernel::Threaded { .. } => Runtime::Threaded,
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            RtKernel::Coro { .. } => Runtime::Coro,
        }
    }

    /// Creates the transfer handle for a newly spawned thread process.
    pub(crate) fn new_proc_shared(&self) -> RtShared {
        match self {
            RtKernel::Threaded { .. } => RtShared::Threaded(Arc::new(ProcShared::new())),
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            RtKernel::Coro { rt } => RtShared::Coro(coro::CoroShared::new(Arc::clone(rt))),
        }
    }

    /// Process side: hands control to the kernel (chain exit). Under
    /// coro this switches to the root context and returns when the
    /// calling process is next dispatched.
    pub(crate) fn signal(&self) {
        match self {
            RtKernel::Threaded { gate } => gate.signal(),
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            RtKernel::Coro { rt } => rt.signal(),
        }
    }

    /// Kernel side: blocks until the chain hands control back (threaded)
    /// or consumes the token set by the switch that brought control here
    /// (coro).
    pub(crate) fn wait(&self) {
        match self {
            RtKernel::Threaded { gate } => gate.wait(),
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            RtKernel::Coro { rt } => rt.wait(),
        }
    }
}
