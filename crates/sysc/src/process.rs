//! Thread-process plumbing: the lock-free baton handoff protocol.
//!
//! SystemC `SC_THREAD`s are stackful coroutines. Stable Rust has no
//! native coroutines, so each thread process runs on its own OS thread
//! (leased from the [`crate::pool`] process pool) under a strict
//! *baton* protocol: at any instant either the kernel or exactly one
//! process owns the baton, which makes the simulation fully
//! deterministic (equivalent to SystemC's co-operative evaluator)
//! while letting user code suspend anywhere in its call stack.
//!
//! # The baton word
//!
//! The old implementation rendezvoused through a `Mutex<Baton>` plus a
//! `Condvar` with `notify_all`; on the handoff-dominated hot path that
//! cost several futex system calls per direction. The protocol is now a
//! single atomic word per process:
//!
//! * bit 0 — whose turn it is (`0` kernel, `1` process);
//! * bit 1 — the kernel side is parked waiting for the baton;
//! * bit 2 — the process side is parked waiting for the baton;
//!
//! plus two single-slot `UnsafeCell`s for the command/reply payloads,
//! which only the current baton owner may touch (the turn bit is the
//! synchronisation point: payloads are written before the `AcqRel`
//! turn flip and read after observing it).
//!
//! A waiter spins briefly, then yields, then publishes its
//! `std::thread` handle and parks on the raw thread parker
//! (adaptive spin-then-park; the spin budget is zero on single-core
//! hosts where spinning can never observe progress). A waker flips the
//! turn bit and issues **at most one** `unpark` — and only when the
//! flip observed the peer's parked bit, so a spinning peer costs zero
//! system calls. The rendezvous is strictly two-party: the parked-bit
//! `debug_assert`s pin the single-waiter invariant.
//!
//! [`Gate`] is the same spin-then-park shape for the kernel thread's
//! evaluate-phase rendezvous: with chained dispatch (see
//! [`crate::kernel`]) a yielding process hands the baton *directly* to
//! the next runnable thread process and the kernel thread stays parked
//! on its gate until the chain needs it (method process, signal
//! update, run outcome, or a panic).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::OnceLock;
use std::thread::{self, Thread};

use parking_lot::Mutex;

use crate::runtime::{Cmd, Reply};

/// Whose turn bit 0 encodes; also names the two parked bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Side {
    Kernel,
    Process,
}

const TURN_PROCESS: u32 = 1;
const KERNEL_PARKED: u32 = 1 << 1;
const PROCESS_PARKED: u32 = 1 << 2;

impl Side {
    fn turn_value(self) -> u32 {
        match self {
            Side::Kernel => 0,
            Side::Process => TURN_PROCESS,
        }
    }

    fn parked_bit(self) -> u32 {
        match self {
            Side::Kernel => KERNEL_PARKED,
            Side::Process => PROCESS_PARKED,
        }
    }

    fn peer(self) -> Side {
        match self {
            Side::Kernel => Side::Process,
            Side::Process => Side::Kernel,
        }
    }
}

/// Spin iterations before escalating to `yield_now` (0 on single-core
/// hosts: with one hardware thread the peer cannot make progress while
/// we spin, so spinning only delays the inevitable context switch).
fn spin_budget() -> u32 {
    static BUDGET: OnceLock<u32> = OnceLock::new();
    *BUDGET.get_or_init(|| match thread::available_parallelism() {
        Ok(n) if n.get() > 1 => 64,
        _ => 0,
    })
}

/// `yield_now` rounds before parking. On a single-core host a yield
/// usually schedules the peer directly, saving the futex wake/wait
/// pair; under heavy oversubscription (farm campaigns) the budget
/// bounds the wasted quanta before the thread parks properly.
const YIELD_BUDGET: u32 = 16;

/// Spin → yield → park helper: returns as soon as `ready()` holds;
/// `park_prep` runs once just before the caller is committed to
/// parking (used to publish the thread handle + parked bit).
fn spin_then(ready: impl Fn() -> bool, park_prep: impl FnOnce() -> bool) {
    let mut spins = spin_budget();
    let mut yields = YIELD_BUDGET;
    loop {
        if ready() {
            return;
        }
        if spins > 0 {
            spins -= 1;
            std::hint::spin_loop();
        } else if yields > 0 {
            yields -= 1;
            thread::yield_now();
        } else {
            break;
        }
    }
    // `park_prep` publishes the waiter; it returns `true` if the
    // condition turned ready concurrently (no park needed).
    if park_prep() {
        return;
    }
    while !ready() {
        thread::park();
    }
}

/// Shared rendezvous state between the kernel and one process thread.
///
/// Payload cells are `UnsafeCell`s because ownership is mediated by the
/// baton: only the side holding the turn may touch them, and the turn
/// handover is an `AcqRel` RMW on `state`.
pub(crate) struct ProcShared {
    state: AtomicU32,
    /// Set by the terminate handshake ([`ProcShared::resume`] with
    /// [`Cmd::Terminate`]): tells the process wrapper to reply through
    /// the baton instead of the chained-dispatch path.
    terminating: AtomicBool,
    cmd: UnsafeCell<Option<Cmd>>,
    reply: UnsafeCell<Option<Reply>>,
    kernel_thread: Mutex<Option<Thread>>,
    process_thread: Mutex<Option<Thread>>,
}

// SAFETY: the `UnsafeCell`s are only accessed by the side currently
// holding the baton, and the handover is an `AcqRel` atomic operation
// on `state` (see the module docs); everything else is `Sync` already.
unsafe impl Send for ProcShared {}
unsafe impl Sync for ProcShared {}

impl ProcShared {
    pub(crate) fn new() -> Self {
        ProcShared {
            state: AtomicU32::new(Side::Kernel.turn_value()),
            terminating: AtomicBool::new(false),
            cmd: UnsafeCell::new(None),
            reply: UnsafeCell::new(None),
            kernel_thread: Mutex::new(None),
            process_thread: Mutex::new(None),
        }
    }

    fn slot(&self, side: Side) -> &Mutex<Option<Thread>> {
        match side {
            Side::Kernel => &self.kernel_thread,
            Side::Process => &self.process_thread,
        }
    }

    /// Blocks (spin → yield → park) until `me` owns the baton.
    fn wait_for_turn(&self, me: Side) {
        let want = me.turn_value();
        spin_then(
            || self.state.load(Ordering::Acquire) & TURN_PROCESS == want,
            || {
                *self.slot(me).lock() = Some(thread::current());
                let prev = self.state.fetch_or(me.parked_bit(), Ordering::AcqRel);
                debug_assert_eq!(
                    prev & me.parked_bit(),
                    0,
                    "single-waiter invariant: {me:?} side parked twice"
                );
                prev & TURN_PROCESS == want
            },
        );
        // Clear our parked bit (a waker that raced us and observed it
        // issued one extra unpark; the stray token is absorbed by the
        // re-check loop of whatever parks on this thread next).
        self.state.fetch_and(!me.parked_bit(), Ordering::AcqRel);
    }

    /// Flips the turn bit, waking the peer iff it is parked — at most
    /// one `unpark` system call per handoff, zero when the peer spins.
    fn hand_over(&self, from: Side) {
        let prev = self.state.fetch_xor(TURN_PROCESS, Ordering::AcqRel);
        debug_assert_eq!(
            prev & TURN_PROCESS,
            from.turn_value(),
            "baton handed over by the non-owning side"
        );
        let peer = from.peer();
        if prev & peer.parked_bit() != 0 {
            // `notify_one`-shaped by construction: the rendezvous is
            // strictly two-party, so the slot names the only waiter.
            let t = self.slot(peer).lock().clone();
            if let Some(t) = t {
                t.unpark();
            }
        }
    }

    /// Kernel side: hand the baton to the process with `cmd` without
    /// waiting for anything back (chained dispatch — the process's own
    /// yield path does the scheduler bookkeeping).
    pub(crate) fn post(&self, cmd: Cmd) {
        debug_assert_eq!(
            self.state.load(Ordering::Relaxed) & TURN_PROCESS,
            Side::Kernel.turn_value(),
            "post while the process owns the baton (double resume?)"
        );
        // SAFETY: the kernel side owns the baton, so no other thread
        // touches the cell until `hand_over` publishes the turn.
        unsafe {
            let cell = &mut *self.cmd.get();
            debug_assert!(cell.is_none(), "resume while a command is pending");
            *cell = Some(cmd);
        }
        self.hand_over(Side::Kernel);
    }

    /// Kernel side: hand the baton over with `cmd` and block until the
    /// process hands it back with a reply (the terminate handshake used
    /// by `kill` and simulation teardown).
    pub(crate) fn resume(&self, cmd: Cmd) -> Reply {
        if matches!(cmd, Cmd::Terminate) {
            self.terminating.store(true, Ordering::Release);
        }
        self.post(cmd);
        self.wait_for_turn(Side::Kernel);
        // SAFETY: the baton is back with the kernel side.
        unsafe { (*self.reply.get()).take() }.expect("process returned baton without a reply")
    }

    /// `true` once a terminate handshake is in flight; the process
    /// wrapper then replies through the baton ([`ProcShared::finish`]).
    pub(crate) fn is_terminating(&self) -> bool {
        self.terminating.load(Ordering::Acquire)
    }

    /// Process side: block until the kernel (or a chaining peer) hands
    /// over the baton; returns the command to execute.
    pub(crate) fn await_cmd(&self) -> Cmd {
        self.wait_for_turn(Side::Process);
        // SAFETY: the process side owns the baton.
        unsafe { (*self.cmd.get()).take() }.expect("turn handed over without a command")
    }

    /// Process side: give the baton back without a reply (normal yield;
    /// the caller has already done the scheduler bookkeeping under the
    /// kernel lock).
    pub(crate) fn release(&self) {
        self.hand_over(Side::Process);
    }

    /// Process side: final reply of the terminate handshake; does not
    /// wait for another turn.
    pub(crate) fn finish(&self, reply: Reply) {
        // SAFETY: the process side owns the baton.
        unsafe {
            *self.reply.get() = Some(reply);
        }
        self.hand_over(Side::Process);
    }
}

/// Token-gated rendezvous for the kernel thread.
///
/// With chained dispatch the kernel thread parks here after handing a
/// thread process the baton; the chain signals the gate when control
/// must return to the kernel (method process due, signal updates
/// pending, run outcome reached, panic). Signals are sticky tokens, so
/// a signal sent before the kernel parks is never lost, and the wait
/// loop is token-gated — a stray `unpark` left over from baton traffic
/// can never release the gate early.
pub(crate) struct Gate {
    state: AtomicU32,
    thread: Mutex<Option<Thread>>,
}

const GATE_TOKEN: u32 = 1;
const GATE_PARKED: u32 = 1 << 1;

impl Gate {
    pub(crate) fn new() -> Self {
        Gate {
            state: AtomicU32::new(0),
            thread: Mutex::new(None),
        }
    }

    /// Hands control to the kernel thread (at most one `unpark`).
    pub(crate) fn signal(&self) {
        let prev = self.state.fetch_or(GATE_TOKEN, Ordering::AcqRel);
        debug_assert_eq!(prev & GATE_TOKEN, 0, "gate signalled twice without a wait");
        if prev & GATE_PARKED != 0 {
            let t = self.thread.lock().clone();
            if let Some(t) = t {
                t.unpark();
            }
        }
    }

    /// Kernel thread: block until signalled; consumes the token.
    pub(crate) fn wait(&self) {
        spin_then(
            || self.state.load(Ordering::Acquire) & GATE_TOKEN != 0,
            || {
                *self.thread.lock() = Some(thread::current());
                let prev = self.state.fetch_or(GATE_PARKED, Ordering::AcqRel);
                prev & GATE_TOKEN != 0
            },
        );
        self.state
            .fetch_and(!(GATE_TOKEN | GATE_PARKED), Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{reply_from_panic, TerminateSignal, WakeReason};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::thread;

    /// The chained-yield round trip: post → await_cmd → release, with
    /// the kernel side polling the turn via a second post.
    #[test]
    fn baton_round_trip() {
        let shared = Arc::new(ProcShared::new());
        let s2 = Arc::clone(&shared);
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let t = thread::spawn(move || {
            for i in 0..10_000u64 {
                match s2.await_cmd() {
                    Cmd::Run(r) => assert_eq!(r, WakeReason::Yielded),
                    Cmd::Terminate => panic!("unexpected terminate"),
                }
                assert_eq!(c2.fetch_add(1, Ordering::Relaxed), i);
                s2.release();
            }
            match s2.await_cmd() {
                Cmd::Terminate => s2.finish(Reply::Finished),
                Cmd::Run(_) => panic!("expected terminate"),
            }
        });

        for i in 0..10_000u64 {
            shared.post(Cmd::Run(WakeReason::Yielded));
            shared.wait_for_turn(Side::Kernel);
            assert_eq!(counter.load(Ordering::Relaxed), i + 1);
        }
        match shared.resume(Cmd::Terminate) {
            Reply::Finished => {}
            Reply::Panicked(_) => panic!("expected finish"),
        }
        t.join().unwrap();
    }

    /// Stray `unpark` tokens (spurious wakeups) must never corrupt the
    /// protocol: a saboteur thread hammers both parties' parkers while
    /// the baton ping-pongs under a strict alternation check.
    #[test]
    fn baton_survives_spurious_unparks() {
        let shared = Arc::new(ProcShared::new());
        let s2 = Arc::clone(&shared);
        let stop = Arc::new(AtomicBool::new(false));
        let counter = Arc::new(AtomicU64::new(0));

        let c2 = Arc::clone(&counter);
        let proc_t = thread::spawn(move || loop {
            match s2.await_cmd() {
                Cmd::Run(_) => {
                    c2.fetch_add(1, Ordering::Relaxed);
                    s2.release();
                }
                Cmd::Terminate => {
                    s2.finish(Reply::Finished);
                    return;
                }
            }
        });

        let saboteur = {
            let stop = Arc::clone(&stop);
            let kernel = thread::current();
            let victim = proc_t.thread().clone();
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    kernel.unpark();
                    victim.unpark();
                    thread::yield_now();
                }
            })
        };

        for i in 0..20_000u64 {
            shared.post(Cmd::Run(WakeReason::Yielded));
            shared.wait_for_turn(Side::Kernel);
            // Strict alternation: exactly one activation per post, in
            // order, no matter how many spurious wakeups were injected.
            assert_eq!(counter.load(Ordering::Relaxed), i + 1);
        }
        assert!(matches!(shared.resume(Cmd::Terminate), Reply::Finished));
        stop.store(true, Ordering::Relaxed);
        saboteur.join().unwrap();
        proc_t.join().unwrap();
    }

    /// Posting while the process owns the baton is a protocol violation
    /// (double resume); the debug assertion must catch it.
    #[test]
    #[cfg(debug_assertions)]
    fn double_resume_asserts() {
        let shared = Arc::new(ProcShared::new());
        shared.post(Cmd::Run(WakeReason::Start));
        let s2 = Arc::clone(&shared);
        let err = thread::spawn(move || s2.post(Cmd::Run(WakeReason::Start)))
            .join()
            .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("double resume"), "unexpected panic: {msg}");
    }

    #[test]
    fn gate_token_is_sticky_and_consumed() {
        let gate = Arc::new(Gate::new());
        // Signal before wait: the token must not be lost.
        gate.signal();
        gate.wait();
        // Signal from another thread while waiting.
        let g2 = Arc::clone(&gate);
        let t = thread::spawn(move || g2.signal());
        gate.wait();
        t.join().unwrap();
    }

    #[test]
    fn terminate_payload_is_recognised() {
        let r = reply_from_panic(Box::new(TerminateSignal));
        assert!(matches!(r, Reply::Finished));
        let r = reply_from_panic(Box::new("boom"));
        assert!(matches!(r, Reply::Panicked(_)));
    }
}
