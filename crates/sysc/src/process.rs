//! Thread-process plumbing: the baton handoff protocol.
//!
//! SystemC `SC_THREAD`s are stackful coroutines. Stable Rust has no
//! native coroutines, so each thread process runs on its own OS thread
//! under a strict *baton* protocol: at any instant either the kernel or
//! exactly one process owns the baton, which makes the simulation fully
//! deterministic (equivalent to SystemC's co-operative evaluator) while
//! letting user code suspend anywhere in its call stack.

use std::any::Any;
use std::panic;

use parking_lot::{Condvar, Mutex};

use crate::ids::EventId;
use crate::time::SimTime;

/// Why a suspended process was resumed; returned by the wait primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// First activation of the process.
    Start,
    /// A `wait_time` completed.
    TimeElapsed,
    /// The awaited event (or one of a `wait_any` set) fired.
    Fired(EventId),
    /// A `wait_event_timeout` expired before the event fired.
    TimedOut,
    /// Every event of a `wait_all` set has fired.
    AllFired,
    /// A `yield_delta` completed (next delta cycle reached).
    Yielded,
}

/// What a process asks the kernel to do when it suspends.
#[derive(Debug, Clone)]
pub(crate) enum WaitSpec {
    /// Sleep for a duration of simulated time.
    Time(SimTime),
    /// Sleep until an event fires.
    Event(EventId),
    /// Sleep until an event fires or a timeout elapses, whichever is first.
    EventTimeout(EventId, SimTime),
    /// Sleep until any of the listed events fires.
    AnyEvent(Vec<EventId>),
    /// Sleep until all of the listed events have fired at least once.
    AllEvents(Vec<EventId>),
    /// Give up the processor until the next delta cycle.
    YieldDelta,
}

/// Kernel-to-process command.
pub(crate) enum Cmd {
    /// Continue execution; carries the reason the wait completed.
    Run(WakeReason),
    /// Unwind and exit (process kill / simulation teardown).
    Terminate,
}

/// Process-to-kernel reply.
pub(crate) enum Reply {
    /// The process suspended with the given wait request.
    Yielded(WaitSpec),
    /// The process body returned (or was terminated cooperatively).
    Finished,
    /// The process body panicked; payload to be re-thrown by the kernel.
    Panicked(Box<dyn Any + Send>),
}

/// Panic payload used to unwind a process stack on termination.
///
/// The wrapper installed by the kernel catches this payload and converts
/// it into a clean [`Reply::Finished`], so user `Drop` impls still run.
pub(crate) struct TerminateSignal;

/// Whose turn it is to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Turn {
    Kernel,
    Process,
}

struct Baton {
    turn: Turn,
    cmd: Option<Cmd>,
    reply: Option<Reply>,
}

/// Shared rendezvous state between the kernel and one process thread.
pub(crate) struct ProcShared {
    mu: Mutex<Baton>,
    cv: Condvar,
}

impl ProcShared {
    pub(crate) fn new() -> Self {
        ProcShared {
            mu: Mutex::new(Baton {
                turn: Turn::Kernel,
                cmd: None,
                reply: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Kernel side: hand the baton to the process with `cmd` and block
    /// until the process hands it back with a reply.
    pub(crate) fn resume(&self, cmd: Cmd) -> Reply {
        let mut b = self.mu.lock();
        debug_assert!(b.cmd.is_none(), "resume while a command is pending");
        b.cmd = Some(cmd);
        b.turn = Turn::Process;
        self.cv.notify_all();
        while b.turn != Turn::Kernel {
            self.cv.wait(&mut b);
        }
        b.reply
            .take()
            .expect("process returned baton without a reply")
    }

    /// Process side: block until the kernel hands over the baton; returns
    /// the command to execute.
    pub(crate) fn await_turn(&self) -> Cmd {
        let mut b = self.mu.lock();
        while b.turn != Turn::Process {
            self.cv.wait(&mut b);
        }
        b.cmd.take().expect("kernel gave turn without a command")
    }

    /// Process side: hand the baton back with `reply` and block until the
    /// kernel resumes us again. Returns the next command.
    pub(crate) fn yield_to_kernel(&self, reply: Reply) -> Cmd {
        let mut b = self.mu.lock();
        b.reply = Some(reply);
        b.turn = Turn::Kernel;
        self.cv.notify_all();
        while b.turn != Turn::Process {
            self.cv.wait(&mut b);
        }
        b.cmd.take().expect("kernel gave turn without a command")
    }

    /// Process side: final reply when the body has finished; does not
    /// wait for another turn.
    pub(crate) fn finish(&self, reply: Reply) {
        let mut b = self.mu.lock();
        b.reply = Some(reply);
        b.turn = Turn::Kernel;
        self.cv.notify_all();
    }
}

/// Converts a caught panic payload into a reply, recognising cooperative
/// termination.
pub(crate) fn reply_from_panic(payload: Box<dyn Any + Send>) -> Reply {
    if payload.is::<TerminateSignal>() {
        Reply::Finished
    } else {
        Reply::Panicked(payload)
    }
}

/// Unwinds the current process stack as a cooperative termination.
pub(crate) fn raise_terminate() -> ! {
    panic::resume_unwind(Box::new(TerminateSignal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn baton_round_trip() {
        let shared = Arc::new(ProcShared::new());
        let s2 = Arc::clone(&shared);
        let t = thread::spawn(move || {
            // Process: wait for first turn, yield once, then finish.
            match s2.await_turn() {
                Cmd::Run(r) => assert_eq!(r, WakeReason::Start),
                Cmd::Terminate => panic!("unexpected terminate"),
            }
            match s2.yield_to_kernel(Reply::Yielded(WaitSpec::YieldDelta)) {
                Cmd::Run(r) => assert_eq!(r, WakeReason::Yielded),
                Cmd::Terminate => panic!("unexpected terminate"),
            }
            s2.finish(Reply::Finished);
        });

        match shared.resume(Cmd::Run(WakeReason::Start)) {
            Reply::Yielded(WaitSpec::YieldDelta) => {}
            _ => panic!("expected yield"),
        }
        match shared.resume(Cmd::Run(WakeReason::Yielded)) {
            Reply::Finished => {}
            _ => panic!("expected finish"),
        }
        t.join().unwrap();
    }

    #[test]
    fn terminate_payload_is_recognised() {
        let r = reply_from_panic(Box::new(TerminateSignal));
        assert!(matches!(r, Reply::Finished));
        let r = reply_from_panic(Box::new("boom"));
        assert!(matches!(r, Reply::Panicked(_)));
    }
}
