//! # sysc — a SystemC-inspired discrete-event simulation kernel
//!
//! This crate is the simulation substrate of the RTK-Spec TRON
//! reproduction (DATE 2005). The paper builds its RTOS simulation model
//! on SystemC 2.0; since no SystemC exists for Rust, `sysc` reimplements
//! the subset the paper depends on:
//!
//! * **Thread processes** (`SC_THREAD`): coroutine-style bodies that can
//!   suspend anywhere via [`ProcCtx::wait_time`], [`ProcCtx::wait_event`]
//!   and friends. Implemented as OS threads under a strict baton
//!   protocol — exactly one process executes at any instant, so the
//!   simulation is deterministic like SystemC's evaluator.
//! * **Method processes** (`SC_METHOD`): non-blocking callbacks with
//!   static sensitivity, run on the kernel thread (no stack switch) —
//!   used for clocked hardware models where handoff cost would dominate.
//! * **Events** with immediate, delta and timed notification, the
//!   `sc_event` single-pending-notification override rule, cancellation,
//!   and periodic auto-renotification (clocks).
//! * **Delta cycles** with the evaluate → update → delta-notify →
//!   advance-time loop, and [`Signal`]s with request-update/update
//!   semantics.
//! * **Dynamic sensitivity**: `wait(t)`, `wait(event)`,
//!   `wait(event, timeout)`, `wait_any`, `wait_all`, delta yield.
//!
//! # Quickstart
//!
//! ```
//! use sysc::{Simulation, SimTime, SpawnMode};
//!
//! let mut sim = Simulation::new();
//! let h = sim.handle();
//! let ping = h.create_event("ping");
//! let pong = h.create_event("pong");
//!
//! h.spawn_thread("ping", SpawnMode::Immediate, move |ctx| {
//!     for _ in 0..3 {
//!         ctx.wait_time(SimTime::from_us(10));
//!         ctx.handle().notify(ping);
//!         ctx.wait_event(pong);
//!     }
//! });
//! let h2 = sim.handle();
//! h2.spawn_thread("pong", SpawnMode::WaitEvent(ping), move |ctx| {
//!     loop {
//!         ctx.handle().notify_after(pong, SimTime::from_us(5));
//!         ctx.wait_event(ping);
//!     }
//! });
//!
//! sim.run_until(SimTime::from_ms(1));
//! assert_eq!(sim.handle().event_fire_count(ping), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Every `unsafe` operation must sit in an explicit `unsafe` block with
// its own `// SAFETY:` justification (mechanically enforced by
// `cargo run -p rtk-analysis --bin unsafe_audit`), even inside
// `unsafe fn` bodies.
#![deny(unsafe_op_in_unsafe_fn)]

mod ids;
mod kernel;
pub mod pool;
mod process;
pub mod runtime;
mod signal;
mod time;
mod trace;

pub use ids::{EventId, ProcId};
pub use kernel::wheel::{TimedEntry, TimingWheel};
pub use kernel::{
    MethodCtx, NotifyBatch, ProcCtx, RunOutcome, SimHandle, Simulation, SpawnMode, WaitOutcome,
};
pub use runtime::{Runtime, WakeReason};
pub use signal::{Clock, Signal, SignalValue};
pub use time::SimTime;
pub use trace::{KernelStats, Tracer};
