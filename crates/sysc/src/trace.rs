//! Kernel observation hooks.
//!
//! A [`Tracer`] can be attached to a simulation to observe scheduler
//! activity: process dispatches, event firings, signal updates and time
//! advances. The `rtk-analysis` crate builds Gantt charts, VCD waveform
//! dumps and speed reports on top of these hooks.
//!
//! Tracer methods are invoked while the kernel lock is held; tracer
//! implementations must record and return — they must **not** call back
//! into the simulation. With chained dispatch the hooks may fire from
//! any simulation thread (the scheduler migrates to whichever process
//! thread is yielding), always serialized by the kernel lock.

use crate::ids::{EventId, ProcId};
use crate::time::SimTime;

/// Observer of kernel activity. All methods have empty default bodies so
/// implementers only override what they need.
#[allow(unused_variables)]
pub trait Tracer: Send + Sync {
    /// A process was handed the processor in the evaluate phase.
    fn process_dispatched(&self, now: SimTime, proc: ProcId, name: &str) {}

    /// A process suspended (waited) or finished.
    fn process_suspended(&self, now: SimTime, proc: ProcId) {}

    /// An event notification fired (waiters have been woken).
    fn event_fired(&self, now: SimTime, event: EventId, name: &str) {}

    /// Simulated time advanced from `from` to `to`.
    fn time_advanced(&self, from: SimTime, to: SimTime) {}

    /// A signal changed value in the update phase. `value` is the
    /// signal's VCD-style rendering.
    fn signal_changed(&self, now: SimTime, name: &str, value: &str) {}

    /// A delta cycle completed at the current time.
    fn delta_cycle(&self, now: SimTime, delta: u64) {}
}

/// Counters maintained by the kernel; cheap always-on statistics used by
/// the Table 2 speed harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Number of process activations (thread resumes + method calls).
    pub process_runs: u64,
    /// Number of event notifications delivered.
    pub events_fired: u64,
    /// Number of delta cycles executed.
    pub delta_cycles: u64,
    /// Number of distinct simulated-time advances.
    pub time_advances: u64,
    /// Number of signal value changes applied in update phases.
    pub signal_updates: u64,
    /// Number of waits served from the fast-forward run budget (the
    /// waiting process advanced time in place, no baton handoff).
    pub fast_forwards: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NullTracer;
    impl Tracer for NullTracer {}

    #[test]
    fn default_methods_are_callable() {
        let t = NullTracer;
        t.process_dispatched(SimTime::ZERO, ProcId(0), "p");
        t.process_suspended(SimTime::ZERO, ProcId(0));
        t.event_fired(SimTime::ZERO, EventId(0), "e");
        t.time_advanced(SimTime::ZERO, SimTime::from_ns(1));
        t.signal_changed(SimTime::ZERO, "s", "1");
        t.delta_cycle(SimTime::ZERO, 0);
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = KernelStats::default();
        assert_eq!(s.process_runs, 0);
        assert_eq!(s.events_fired, 0);
        assert_eq!(s.delta_cycles, 0);
        assert_eq!(s.time_advances, 0);
        assert_eq!(s.signal_updates, 0);
    }
}
