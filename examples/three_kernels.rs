//! The paper's SIM_API coverage demonstration (§4): the same workload on
//! the three kernels — RTK-Spec I (round robin), RTK-Spec II (priority
//! preemptive, 16 levels) and RTK-Spec TRON (T-Kernel) — showing how the
//! scheduler plug-in changes the execution order while the SIM_API layer
//! stays identical.
//!
//! Run with: `cargo run --example three_kernels`

use std::sync::{Arc, Mutex};

use rtk_spec_tron::core::minikernels::{rtk_spec_i, rtk_spec_ii};
use rtk_spec_tron::core::{KernelConfig, Rtos, Sys};
use rtk_spec_tron::sysc::SimTime;

fn workload(log: Arc<Mutex<Vec<String>>>) -> impl FnMut(&mut Sys<'_>, i32) + Send {
    move |sys, _| {
        for (name, pri) in [("alpha", 12u8), ("beta", 10), ("gamma", 14)] {
            let log = Arc::clone(&log);
            let t = sys
                .tk_cre_tsk(name, pri, move |sys, _| {
                    for round in 0..3 {
                        sys.exec(SimTime::from_ms(2));
                        log.lock().unwrap().push(format!("{name}{round}"));
                    }
                })
                .unwrap();
            sys.tk_sta_tsk(t, 0).unwrap();
        }
    }
}

fn run(label: &str, mut rtos: Rtos, log: Arc<Mutex<Vec<String>>>) {
    rtos.run_for(SimTime::from_ms(60));
    println!("{label:<32} {}", log.lock().unwrap().join(" "));
}

fn main() {
    println!("completion order of 3 tasks x 3 rounds (2 ms each):\n");

    let log = Arc::new(Mutex::new(Vec::new()));
    run(
        "RTK-Spec I (round robin, 2t)",
        rtk_spec_i(2, workload(Arc::clone(&log))),
        log,
    );

    let log = Arc::new(Mutex::new(Vec::new()));
    run(
        "RTK-Spec II (priority, 16 lvl)",
        rtk_spec_ii(workload(Arc::clone(&log))),
        log,
    );

    let log = Arc::new(Mutex::new(Vec::new()));
    run(
        "RTK-Spec TRON (T-Kernel)",
        Rtos::new(KernelConfig::paper(), workload(Arc::clone(&log))),
        log,
    );

    println!(
        "\nround robin interleaves; the priority kernels run beta (pri 10) to completion first"
    );
}
