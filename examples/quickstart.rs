//! Quickstart: two tasks synchronising through a semaphore on the
//! RTK-Spec TRON kernel, with a Gantt chart of what happened.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use rtk_spec_tron::analysis::{GanttChart, GanttConfig, TraceRecorder};
use rtk_spec_tron::core::{KernelConfig, QueueOrder, Rtos, Timeout};
use rtk_spec_tron::sysc::SimTime;

fn main() {
    // Build a kernel; the closure is the user main entry, running as
    // the initialization task after boot.
    let mut rtos = Rtos::new(KernelConfig::paper(), |sys, _| {
        let sem = sys.tk_cre_sem("gate", 0, 8, QueueOrder::Fifo).unwrap();

        let consumer = sys
            .tk_cre_tsk("consumer", 10, move |sys, _| {
                for i in 0..5 {
                    sys.tk_wai_sem(sem, 1, Timeout::Forever).unwrap();
                    println!("[{}] consumer got item {i}", sys.now());
                    sys.exec(SimTime::from_us(300)); // process the item
                }
            })
            .unwrap();

        let producer = sys
            .tk_cre_tsk("producer", 20, move |sys, _| {
                for i in 0..5 {
                    sys.exec(SimTime::from_ms(2)); // produce an item
                    println!("[{}] producer signals item {i}", sys.now());
                    sys.tk_sig_sem(sem, 1).unwrap();
                }
            })
            .unwrap();

        sys.tk_sta_tsk(consumer, 0).unwrap();
        sys.tk_sta_tsk(producer, 0).unwrap();
    });

    let recorder = Arc::new(TraceRecorder::new());
    rtos.set_trace_sink(recorder.clone());

    rtos.run_for(SimTime::from_ms(15));

    println!();
    let chart = GanttChart::new(GanttConfig {
        width: 90,
        show_markers: true,
    });
    println!(
        "{}",
        chart.render(&recorder.snapshot(), SimTime::ZERO, SimTime::from_ms(15))
    );
    println!("{}", rtos.ds().dump_listing());
}
