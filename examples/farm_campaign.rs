//! A small in-process simulation-farm campaign: expand a window of
//! seeds into scenarios, run them across worker threads, and print the
//! aggregate distributions — the library-API version of what the
//! `rtk-farm` CLI does at thousand-seed scale.
//!
//! Run with: `cargo run --release --example farm_campaign`

use rtk_farm::{run_campaign, CampaignConfig, CampaignReport, ScenarioSpec, Tuning};

fn main() {
    let cfg = CampaignConfig {
        base_seed: 1,
        seeds: 32,
        threads: 0, // all cores
        tuning: Tuning {
            quick: true,
            faults: true,
        },
        // Check every kernel decision against the ITRON reference model.
        oracle: true,
        topology: None,
        runtime: sysc::Runtime::default(),
        // No .rtkt capture here; see `rtk-farm --trace-dir`.
        trace: None,
        // No static-analysis cross-check here; see `rtk-farm --analyze`.
        analyze: false,
    };

    // Every seed names a complete scenario; show a few.
    println!("seed → scenario (first 4 of {}):", cfg.seeds);
    for seed in cfg.base_seed..cfg.base_seed + 4 {
        let s = ScenarioSpec::generate(seed, &cfg.tuning);
        println!(
            "  seed {seed}: {} tasks, {:>12}, storm {}, faults {}, util {:>2}%",
            s.tasks.len(),
            s.topology.label(),
            if s.storm.is_some() { "yes" } else { "no " },
            if s.faults.is_clean() { "no " } else { "yes" },
            s.utilization_pct(),
        );
    }

    let t0 = std::time::Instant::now();
    let outcomes = run_campaign(&cfg);
    let wall = t0.elapsed();
    let report = CampaignReport::new(cfg, outcomes);
    let agg = report.aggregate();

    println!(
        "\n{} scenarios in {:.2}s — digest {:016x}",
        report.outcomes.len(),
        wall.as_secs_f64(),
        report.digest()
    );
    println!(
        "jobs: {} released, {} completed, {} deadline misses, {} starved tasks",
        agg.releases, agg.completions, agg.deadline_misses, agg.starved_tasks
    );
    println!(
        "latency µs:  p50 {:>6}  p90 {:>6}  p99 {:>6}  max {:>6}",
        agg.latency_us.p50, agg.latency_us.p90, agg.latency_us.p99, agg.latency_us.max
    );
    println!(
        "dispatches:  p50 {:>6}  p90 {:>6}  p99 {:>6}  max {:>6}",
        agg.dispatches.p50, agg.dispatches.p90, agg.dispatches.p99, agg.dispatches.max
    );
    println!(
        "energy nJ:   p50 {:>6}  p90 {:>6}  p99 {:>6}  max {:>6}",
        agg.energy_nj.p50, agg.energy_nj.p90, agg.energy_nj.p99, agg.energy_nj.max
    );
    assert!(
        report.all_healthy(),
        "unhealthy scenarios: {:?}",
        report.failures()
    );
    println!("\nall scenarios healthy; same seeds ⇒ same digest on any machine");
}
