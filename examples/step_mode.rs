//! Step mode (paper §5): advance the co-simulation one system tick at a
//! time and watch the kernel state evolve — the mode the paper uses for
//! the Gantt/waveform widgets.
//!
//! Run with: `cargo run --example step_mode`

use rtk_spec_tron::core::KernelConfig;
use rtk_spec_tron::sysc::SimTime;
use rtk_spec_tron::videogame::{build_cosim, GameConfig, Gui, PlayerSkill};

fn main() {
    let mut cosim = build_cosim(
        KernelConfig::paper(),
        GameConfig {
            frame_period: SimTime::from_ms(5),
            ..GameConfig::default()
        },
        PlayerSkill::Perfect,
        Gui::Off,
    );

    for step in 1..=20 {
        cosim.rtos.step(); // one 1 ms tick
        let (running, ready, nest, ticks) = cosim.rtos.ds().td_ref_sys();
        println!(
            "tick {step:>2}: t={:<6} running={:<6} ready={} int_nest={} ticks={}",
            cosim.rtos.now().to_string(),
            running.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
            ready,
            nest,
            ticks,
        );
    }
    println!();
    println!("{}", cosim.rtos.ds().dump_listing());
}
