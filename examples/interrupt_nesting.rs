//! Nested interrupts and delayed dispatching: a low-level ISR is
//! preempted by a high-level one; a task woken inside a handler runs
//! only after the outermost handler returns (the paper's footnote-1
//! dynamics).
//!
//! Run with: `cargo run --example interrupt_nesting`

use rtk_spec_tron::core::{IntNo, KernelConfig, Rtos, Timeout};
use rtk_spec_tron::sysc::{SimTime, SpawnMode};

fn main() {
    let mut rtos = Rtos::new(KernelConfig::paper(), |sys, _| {
        let woken = sys
            .tk_cre_tsk("woken", 5, |sys, _| {
                println!("[{}] task 'woken' dispatched (after handlers)", sys.now());
            })
            .unwrap();

        sys.tk_def_int(IntNo(0), 0, "low_isr", move |sys| {
            println!("[{}]   low_isr begins, wakes the task...", sys.now());
            sys.tk_sta_tsk(woken, 0).unwrap();
            sys.exec(SimTime::from_us(400)); // long handler body
            println!("[{}]   low_isr ends", sys.now());
        })
        .unwrap();

        sys.tk_def_int(IntNo(1), 1, "high_isr", move |sys| {
            println!("[{}]     high_isr nests over low_isr", sys.now());
            sys.exec(SimTime::from_us(100));
            println!("[{}]     high_isr returns", sys.now());
        })
        .unwrap();

        let bg = sys
            .tk_cre_tsk("background", 50, |sys, _| {
                println!("[{}] background task starts", sys.now());
                sys.exec(SimTime::from_ms(3));
                println!("[{}] background task done", sys.now());
                sys.tk_slp_tsk(Timeout::Forever).ok();
            })
            .unwrap();
        sys.tk_sta_tsk(bg, 0).unwrap();
    });

    // External hardware raises the two interrupts mid-execution.
    let port = rtos.int_port();
    rtos.sim_handle()
        .spawn_thread("hardware", SpawnMode::Immediate, move |ctx| {
            ctx.wait_time(SimTime::from_us(1200));
            port.raise(IntNo(0), 0); // low level
            ctx.wait_time(SimTime::from_us(150));
            port.raise(IntNo(1), 1); // nests over the low handler
        });

    rtos.run_for(SimTime::from_ms(10));
}
