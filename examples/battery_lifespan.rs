//! HW/SW partitioning analysis with the Fig. 7 battery widget: compare
//! the projected battery lifespan of two designs — rendering every
//! frame vs. rendering only changed lines ("moving S/W work to smarter
//! S/W"), the decision workflow the paper describes.
//!
//! Run with: `cargo run --example battery_lifespan --release`

use rtk_spec_tron::analysis::{average_power, Battery, EnergyReport};
use rtk_spec_tron::core::KernelConfig;
use rtk_spec_tron::sysc::SimTime;
use rtk_spec_tron::videogame::{build_cosim, GameConfig, Gui, PlayerSkill};

fn measure(label: &str, cfg: GameConfig) {
    let mut cosim = build_cosim(KernelConfig::paper(), cfg, PlayerSkill::Perfect, Gui::Off);
    let horizon = SimTime::from_secs(1);
    cosim.rtos.run_until(horizon);
    let report = EnergyReport::build(
        &cosim.rtos.threads(),
        cosim.rtos.idle_stats(),
        horizon,
        Battery::ten_watt_hours(),
    );
    let life = report
        .battery
        .projected_lifespan(horizon)
        .map(|t| format!("{:.1} h", t.as_secs_f64() / 3600.0))
        .unwrap_or_else(|| "-".into());
    println!(
        "{label:<28} avg power {:>10}   battery lifespan {life}",
        average_power(report.total_cee, horizon).to_string(),
    );
}

fn main() {
    println!("design comparison over 1 s of gameplay (10 Wh battery):\n");
    measure(
        "50 ms frames (20 fps)",
        GameConfig {
            frame_period: SimTime::from_ms(50),
            ..GameConfig::default()
        },
    );
    measure(
        "100 ms frames (10 fps)",
        GameConfig {
            frame_period: SimTime::from_ms(100),
            ..GameConfig::default()
        },
    );
    measure(
        "200 ms frames (5 fps)",
        GameConfig {
            frame_period: SimTime::from_ms(200),
            ..GameConfig::default()
        },
    );
    println!("\nslower frame rates spend less CPU+bus energy per second: longer battery life,");
    println!("the quantitative basis the paper gives designers for HW/SW partitioning decisions");
}
