//! The paper's full case study (§5): RTK-Spec TRON + i8051 BFM + the
//! video-game application (4 tasks, 2 handlers) + GUI widgets, run for
//! one simulated second — then every debug view the paper shows:
//! the virtual-prototype screen, the Gantt trace (Fig. 6), the
//! time/energy distribution with battery (Fig. 7), and the T-Kernel/DS
//! listing (Fig. 8).
//!
//! Run with: `cargo run --example videogame --release`

use std::sync::Arc;

use rtk_spec_tron::analysis::{Battery, EnergyReport, GanttChart, GanttConfig, TraceRecorder};
use rtk_spec_tron::bfm::GuiCost;
use rtk_spec_tron::core::KernelConfig;
use rtk_spec_tron::sysc::SimTime;
use rtk_spec_tron::videogame::{build_cosim, GameConfig, Gui, PlayerSkill};

fn main() {
    let mut cosim = build_cosim(
        KernelConfig::paper(),
        GameConfig::default(),
        PlayerSkill::Perfect,
        Gui::On {
            period: SimTime::from_ms(50),
            cost: GuiCost::LIGHT,
        },
    );
    let recorder = Arc::new(TraceRecorder::new());
    cosim.rtos.set_trace_sink(recorder.clone());

    let horizon = SimTime::from_secs(1);
    cosim.rtos.run_until(horizon);

    // The virtual system prototype "screen".
    println!("{}", cosim.widgets.as_ref().unwrap().screen());

    let game = cosim.game();
    let state = game.state.lock().clone();
    println!(
        "game after 1 s: frames={} score={} lives={} speed={}\n",
        state.frames, state.score, state.lives, state.speed
    );

    // Fig. 6 — execution trace around one physics frame.
    let chart = GanttChart::new(GanttConfig {
        width: 100,
        show_markers: true,
    });
    println!(
        "{}",
        chart.render(
            &recorder.window(SimTime::from_ms(95), SimTime::from_ms(160)),
            SimTime::from_ms(95),
            SimTime::from_ms(160)
        )
    );

    // Fig. 7 — time/energy distribution + 10 Wh battery.
    let report = EnergyReport::build(
        &cosim.rtos.threads(),
        cosim.rtos.idle_stats(),
        horizon,
        Battery::ten_watt_hours(),
    );
    println!("{}", report.render());

    // Fig. 8 — T-Kernel/DS listing.
    println!("{}", cosim.rtos.ds().dump_listing());
}
