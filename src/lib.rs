//! # rtk-spec-tron — umbrella crate of the RTK-Spec TRON reproduction
//!
//! Re-exports the five subsystems of the workspace (see README.md for
//! the architecture and DESIGN.md for the paper mapping):
//!
//! * [`sysc`] — the SystemC-like discrete-event simulation kernel;
//! * [`core`] — T-THREAD, SIM_API, the T-Kernel/OS model, T-Kernel/DS,
//!   and the RTK-Spec I/II mini-kernels;
//! * [`bfm`] — the i8051 bus functional model and peripherals;
//! * [`analysis`] — Gantt, energy/battery, VCD and speed instruments;
//! * [`videogame`] — the paper's case-study application.
//!
//! # Example
//!
//! Run the paper's full co-simulation for 100 ms and inspect the kernel:
//!
//! ```
//! use rtk_spec_tron::core::KernelConfig;
//! use rtk_spec_tron::sysc::SimTime;
//! use rtk_spec_tron::videogame::{build_cosim, GameConfig, Gui, PlayerSkill};
//!
//! let mut cosim = build_cosim(
//!     KernelConfig::paper(),
//!     GameConfig::default(),
//!     PlayerSkill::Perfect,
//!     Gui::Off,
//! );
//! cosim.rtos.run_until(SimTime::from_ms(100));
//! let listing = cosim.rtos.ds().dump_listing();
//! assert!(listing.contains("T-Kernel/DS"));
//! ```

#![warn(missing_docs)]

pub use rtk_analysis as analysis;
pub use rtk_bfm as bfm;
pub use rtk_core as core;
pub use rtk_videogame as videogame;
pub use sysc;
